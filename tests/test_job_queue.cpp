// JobQueue / Runtime edge-case hardening regressions: non-blocking
// admission (try_push / try_submit), submit-after-close as a typed
// error, and deterministic close-while-full draining.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/jobs.hpp"
#include "rt/job_queue.hpp"
#include "rt/runtime.hpp"

namespace sring::rt {
namespace {

JobQueue::Envelope envelope(std::string name) {
  JobQueue::Envelope e;
  e.job.name = std::move(name);
  return e;
}

TEST(JobQueueTryPush, FullThenClosedAreTypedStatuses) {
  JobQueue q(1);
  JobQueue::Envelope a = envelope("a");
  EXPECT_EQ(q.try_push(a), JobQueue::PushStatus::kOk);

  JobQueue::Envelope b = envelope("b");
  EXPECT_EQ(q.try_push(b), JobQueue::PushStatus::kFull);
  // kFull leaves the envelope with the caller, resubmittable as-is.
  EXPECT_EQ(b.job.name, "b");
  EXPECT_EQ(q.stats().rejected_full, 1u);

  EXPECT_EQ(q.pop()->job.name, "a");
  EXPECT_EQ(q.try_push(b), JobQueue::PushStatus::kOk);
  EXPECT_EQ(q.pop()->job.name, "b");

  q.close();
  JobQueue::Envelope c = envelope("c");
  EXPECT_EQ(q.try_push(c), JobQueue::PushStatus::kClosed);
  EXPECT_EQ(q.stats().rejected_closed, 1u);
}

TEST(JobQueueClose, PushAfterCloseIsTypedNotUb) {
  JobQueue q(4);
  q.close();
  // Repeated post-close pushes keep failing cleanly and keep counting.
  EXPECT_FALSE(q.push(envelope("x")));
  EXPECT_FALSE(q.push(envelope("y")));
  EXPECT_EQ(q.stats().rejected_closed, 2u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(JobQueueClose, CloseWhileFullDrainsDeterministically) {
  JobQueue q(2);
  ASSERT_TRUE(q.push(envelope("a")));
  ASSERT_TRUE(q.push(envelope("b")));

  // Several producers parked on the full queue.
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < 3; ++i) {
    producers.emplace_back([&q, &rejected, i] {
      if (!q.push(envelope("blocked" + std::to_string(i)))) ++rejected;
    });
  }
  // Let them reach the wait; blocked_pushes confirms at least one did.
  for (int spin = 0; spin < 200 && q.stats().blocked_pushes < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  q.close();
  for (auto& t : producers) t.join();
  // Every parked producer woke and was rejected — none deadlocked,
  // none slipped an item in past close.
  EXPECT_EQ(rejected.load(), 3);

  // The pre-close backlog drains in FIFO order, then end-of-stream.
  EXPECT_EQ(q.pop()->job.name, "a");
  EXPECT_EQ(q.pop()->job.name, "b");
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.stats().dequeued, 2u);
}

TEST(RuntimeTrySubmit, ShutDownIsTypedForBothSubmitPaths) {
  const RingGeometry g{4, 2, 16};
  const std::vector<Word> coeffs{1, 2};
  const std::vector<Word> x{1, 2, 3, 4};

  Runtime rt;
  rt.shutdown();
  // Blocking submit throws the documented SimError...
  EXPECT_THROW(rt.submit(kernels::make_spatial_fir_job(g, x, coeffs)),
               SimError);
  // ...and try_submit reports the same condition as a status.
  auto t = rt.try_submit(kernels::make_spatial_fir_job(g, x, coeffs));
  EXPECT_EQ(t.status, Runtime::SubmitStatus::kShutDown);
  EXPECT_FALSE(t.result.valid());
}

TEST(RuntimeTrySubmit, AcceptedJobRunsAndNotifies) {
  const RingGeometry g{4, 2, 16};
  const std::vector<Word> coeffs{1, 2};
  const std::vector<Word> x{1, 2, 3, 4};

  RuntimeConfig cfg;
  cfg.workers = 1;
  Runtime rt(cfg);

  std::promise<void> notified;
  auto t = rt.try_submit(kernels::make_spatial_fir_job(g, x, coeffs),
                         [&notified] { notified.set_value(); });
  ASSERT_EQ(t.status, Runtime::SubmitStatus::kAccepted);
  ASSERT_TRUE(t.result.valid());

  // The notify hook fires only after the future is ready.
  ASSERT_EQ(notified.get_future().wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  ASSERT_EQ(t.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const JobResult r = t.result.get();
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.outputs.size(), x.size());
}

TEST(RuntimeTrySubmit, QueueFullSurfacesWithoutBlocking) {
  const RingGeometry g{4, 2, 16};
  const std::vector<Word> coeffs{1, 2};
  // A fat job keeps the single worker busy long enough for the tiny
  // queue to fill behind it.
  std::vector<Word> big(4096);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<Word>(i & 0x7F);
  }

  RuntimeConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  Runtime rt(cfg);

  std::vector<std::future<JobResult>> accepted;
  bool saw_full = false;
  for (int i = 0; i < 64 && !saw_full; ++i) {
    auto t = rt.try_submit(kernels::make_spatial_fir_job(g, big, coeffs));
    if (t.status == Runtime::SubmitStatus::kAccepted) {
      accepted.push_back(std::move(t.result));
    } else {
      EXPECT_EQ(t.status, Runtime::SubmitStatus::kQueueFull);
      EXPECT_FALSE(t.result.valid());
      saw_full = true;
    }
  }
  EXPECT_TRUE(saw_full) << "queue of capacity 1 never reported kFull";

  // Everything that was accepted still completes bit-correctly.
  for (auto& f : accepted) {
    const JobResult r = f.get();
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.outputs.size(), big.size());
  }
  const auto m = rt.metrics();
  EXPECT_GE(m.find_counter("rt.queue.rejected_full")->value(), 1u);
}

}  // namespace
}  // namespace sring::rt
