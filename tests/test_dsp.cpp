// Tests for the golden-model DSP references (FIR, IIR, SAD/motion
// estimation, 5/3 wavelet) including property sweeps.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/fir.hpp"
#include "dsp/iir.hpp"
#include "dsp/sad.hpp"
#include "dsp/wavelet.hpp"

namespace sring::dsp {
namespace {

std::vector<Word> random_signal(std::size_t n, std::uint64_t seed,
                                std::int32_t lo = -256,
                                std::int32_t hi = 255) {
  Rng rng(seed);
  std::vector<Word> x(n);
  for (auto& v : x) v = rng.next_word_in(lo, hi);
  return x;
}

TEST(Fir, ImpulseResponseIsCoefficients) {
  std::vector<Word> x(8, 0);
  x[0] = 1;
  const std::vector<Word> coeffs = {to_word(3), to_word(-2), to_word(7)};
  const auto y = fir_reference(x, coeffs);
  EXPECT_EQ(y[0], to_word(3));
  EXPECT_EQ(y[1], to_word(-2));
  EXPECT_EQ(y[2], to_word(7));
  EXPECT_EQ(y[3], 0u);
}

TEST(Fir, LinearityProperty) {
  const auto x1 = random_signal(40, 1, -20, 20);
  const auto x2 = random_signal(40, 2, -20, 20);
  std::vector<Word> sum(40);
  for (std::size_t i = 0; i < 40; ++i) {
    sum[i] = to_word(as_signed(x1[i]) + as_signed(x2[i]));
  }
  const std::vector<Word> coeffs = {to_word(2), to_word(-1), to_word(5),
                                    to_word(3)};
  const auto y1 = fir_reference(x1, coeffs);
  const auto y2 = fir_reference(x2, coeffs);
  const auto ys = fir_reference(sum, coeffs);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(ys[i], to_word(as_signed(y1[i]) + as_signed(y2[i])));
  }
}

TEST(Fir, DotAgreesWithRunningMac) {
  const auto a = random_signal(33, 3);
  const auto b = random_signal(33, 4);
  const auto running = running_mac_reference(a, b);
  EXPECT_EQ(running.back(), dot_reference(a, b));
}

TEST(Iir1, GeometricImpulseResponse) {
  std::vector<Word> x(6, 0);
  x[0] = 1;
  const auto y = iir1_reference(x, to_word(2));
  // y = 1, 2, 4, 8, 16, 32
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_EQ(y[i], to_word(1 << i));
  }
}

TEST(Iir1, ZeroCoefficientIsIdentity) {
  const auto x = random_signal(32, 9);
  EXPECT_EQ(iir1_reference(x, 0), std::vector<Word>(x.begin(), x.end()));
}

TEST(Biquad, ReducesToFirWhenRecursiveCoeffsZero) {
  const auto x = random_signal(48, 5);
  BiquadCoeffs c;
  c.b0 = to_word(2);
  c.b1 = to_word(-3);
  c.b2 = to_word(1);
  const auto y = biquad_reference(x, c);
  const auto ref = fir_reference(
      x, std::vector<Word>{to_word(2), to_word(-3), to_word(1)});
  EXPECT_EQ(y, ref);
}

TEST(Biquad, ReducesToIir1) {
  const auto x = random_signal(48, 6);
  BiquadCoeffs c;
  c.b0 = to_word(1);
  c.a1 = to_word(3);
  EXPECT_EQ(biquad_reference(x, c), iir1_reference(x, to_word(3)));
}

TEST(Sad, IdenticalBlocksGiveZero) {
  const Image img = Image::synthetic(32, 32, 1);
  EXPECT_EQ(block_sad(img, 8, 8, img, 8, 8), 0u);
}

TEST(Sad, KnownDifference) {
  Image a(16, 16, 10);
  Image b(16, 16, 13);
  EXPECT_EQ(block_sad(a, 0, 0, b, 0, 0), 64u * 3u);
}

TEST(Sad, FullSearchRecoversPlantedMotion) {
  const Image ref = Image::synthetic(64, 64, 77);
  for (const int dx : {-5, 0, 3, 7}) {
    for (const int dy : {-6, 0, 4}) {
      const Image cand = Image::shifted(ref, dx, dy, 0, 0);
      // Block well inside the frame so the clamp never bites.
      const auto mv = full_search(ref, 24, 24, cand, 8);
      EXPECT_EQ(mv.dx, dx);
      EXPECT_EQ(mv.dy, dy);
      EXPECT_EQ(mv.sad, 0u);
    }
  }
}

TEST(Sad, CandidateGridSizeAndConsistency) {
  const Image ref = Image::synthetic(48, 48, 3);
  const Image cand = Image::shifted(ref, 2, 1, 99, 4);
  const auto sads = all_candidate_sads(ref, 16, 16, cand, 8);
  EXPECT_EQ(sads.size(), 289u);
  const auto mv = full_search(ref, 16, 16, cand, 8);
  std::uint32_t best = sads[0];
  for (const auto s : sads) best = std::min(best, s);
  EXPECT_EQ(mv.sad, best);
}

// ---- Wavelet --------------------------------------------------------------

class WaveletRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, Boundary>> {};

TEST_P(WaveletRoundTrip, PerfectReconstruction1D) {
  const auto [n, seed, boundary] = GetParam();
  const auto x = random_signal(static_cast<std::size_t>(n),
                               static_cast<std::uint64_t>(seed));
  const auto bands = dwt53_forward(x, boundary);
  EXPECT_EQ(bands.low.size(), x.size() / 2);
  EXPECT_EQ(dwt53_inverse(bands, boundary), x);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaveletRoundTrip,
    ::testing::Combine(::testing::Values(2, 4, 8, 16, 64, 256),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(Boundary::kZero,
                                         Boundary::kSymmetric)));

TEST(Wavelet, ConstantSignalHasZeroDetail) {
  // 5/3 predict is exact for constants: d == 0, s == x (+0 update).
  std::vector<Word> x(32, to_word(50));
  const auto bands = dwt53_forward(x, Boundary::kSymmetric);
  for (const auto d : bands.high) EXPECT_EQ(d, 0u);
  for (const auto s : bands.low) EXPECT_EQ(s, to_word(50));
}

TEST(Wavelet, RampHasZeroInteriorDetail) {
  // The 5/3 predictor is exact for linear signals away from borders.
  std::vector<Word> x(32);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = to_word(3 * i);
  const auto bands = dwt53_forward(x, Boundary::kSymmetric);
  for (std::size_t i = 0; i + 1 < bands.high.size(); ++i) {
    EXPECT_EQ(bands.high[i], 0u) << i;
  }
}

TEST(Wavelet, RejectsOddLength) {
  std::vector<Word> x(7, 0);
  EXPECT_THROW(dwt53_forward(x), SimError);
}

class Wavelet2DRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, Boundary>> {};

TEST_P(Wavelet2DRoundTrip, PerfectReconstruction2D) {
  const auto [w, h, boundary] = GetParam();
  const Image img = Image::synthetic(static_cast<std::size_t>(w),
                                     static_cast<std::size_t>(h), 42);
  const auto bands = dwt53_forward_2d(img, boundary);
  EXPECT_EQ(bands.ll.width(), img.width() / 2);
  EXPECT_EQ(bands.hh.height(), img.height() / 2);
  EXPECT_EQ(dwt53_inverse_2d(bands, boundary), img);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Wavelet2DRoundTrip,
    ::testing::Combine(::testing::Values(8, 16, 32),
                       ::testing::Values(8, 24),
                       ::testing::Values(Boundary::kZero,
                                         Boundary::kSymmetric)));

TEST(Wavelet, PyramidRoundTrip) {
  const Image img = Image::synthetic(64, 32, 17);
  for (const int levels : {1, 2, 3}) {
    const auto pyr = dwt53_pyramid(img, levels, Boundary::kSymmetric);
    EXPECT_EQ(pyr.size(), static_cast<std::size_t>(levels));
    EXPECT_EQ(dwt53_pyramid_inverse(pyr, Boundary::kSymmetric), img);
  }
}

TEST(Wavelet, EnergyCompactionOnSmoothImage) {
  // Sanity: on a smooth gradient image most detail energy is small.
  Image img(32, 32);
  for (std::size_t y = 0; y < 32; ++y) {
    for (std::size_t x = 0; x < 32; ++x) {
      img.at(x, y) = to_word(4 * x + 2 * y);
    }
  }
  const auto bands = dwt53_forward_2d(img, Boundary::kSymmetric);
  std::int64_t hh_energy = 0;
  for (const auto v : bands.hh.pixels()) {
    hh_energy += std::abs(as_signed(v));
  }
  EXPECT_LT(hh_energy, 64);  // essentially zero off the borders
}

}  // namespace
}  // namespace sring::dsp
