// rt::Runtime behaviour: job results match direct kernel runs
// bit-for-bit, batches keep submission order, errors are propagated
// (not fatal to the fleet), metrics aggregate, shutdown is clean.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/image.hpp"
#include "common/rng.hpp"
#include "dsp/fir.hpp"
#include "dsp/matvec.hpp"
#include "dsp/sad.hpp"
#include "kernels/dwt_kernel.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/jobs.hpp"
#include "kernels/matvec_kernel.hpp"
#include "kernels/motion_estimation.hpp"
#include "rt/runtime.hpp"

namespace sring::rt {
namespace {

constexpr RingGeometry kGeom{8, 2, 16};

std::vector<Word> signal(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Word> x(n);
  for (auto& w : x) w = rng.next_word_in(-100, 100);
  return x;
}

Image image(std::uint64_t seed, std::size_t w, std::size_t h) {
  Rng rng(seed);
  Image img(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      img.at(x, y) = rng.next_word_in(0, 255);
    }
  }
  return img;
}

TEST(Runtime, FirJobMatchesDirectKernelRun) {
  const std::vector<Word> coeffs{1, static_cast<Word>(-2), 3, 4};
  const std::vector<Word> x = signal(1, 64);

  Runtime rt({.workers = 2});
  JobResult r = rt.submit(kernels::make_spatial_fir_job(kGeom, x, coeffs))
                    .get();
  ASSERT_TRUE(r.ok) << r.error;

  kernels::FirResult direct = kernels::run_spatial_fir(kGeom, x, coeffs);
  EXPECT_EQ(r.outputs, direct.outputs);
  EXPECT_EQ(r.outputs, dsp::fir_reference(x, coeffs));
  // Same program, same feed, same machine: the whole simulated record
  // agrees (the kernel helper adds bench extras the job does not).
  direct.report.extras = obs::JsonValue::object();
  EXPECT_EQ(r.report.to_json().dump(), direct.report.to_json().dump());
}

TEST(Runtime, MotionEstimationJobMatchesReference) {
  const Image ref = image(2, 16, 16);
  const Image cand = image(3, 16, 16);
  constexpr int kRange = 2;

  Runtime rt({.workers = 2});
  JobResult r =
      rt.submit(kernels::make_motion_estimation_job(kGeom, ref, 4, 4, cand,
                                                    kRange))
          .get();
  ASSERT_TRUE(r.ok) << r.error;

  const auto expect = dsp::all_candidate_sads(ref, 4, 4, cand, kRange);
  ASSERT_EQ(r.outputs.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(r.outputs[i], static_cast<Word>(expect[i])) << "candidate " << i;
  }

  const dsp::MotionVector best =
      kernels::best_motion_vector(r.outputs, kRange);
  const dsp::MotionVector want = dsp::full_search(ref, 4, 4, cand, kRange);
  EXPECT_EQ(best.dx, want.dx);
  EXPECT_EQ(best.dy, want.dy);
  EXPECT_EQ(best.sad, want.sad);
}

TEST(Runtime, DwtJobMatchesDirectKernelRun) {
  const std::vector<Word> x = signal(4, 128);

  Runtime rt({.workers = 2});
  JobResult r = rt.submit(kernels::make_dwt53_job(kGeom, x)).get();
  ASSERT_TRUE(r.ok) << r.error;

  const dsp::Subbands got =
      kernels::dwt53_bands_from_raw(r.outputs, x.size() / 2);
  const kernels::DwtResult direct = kernels::run_dwt53(kGeom, x);
  EXPECT_EQ(got.low, direct.bands.low);
  EXPECT_EQ(got.high, direct.bands.high);
}

TEST(Runtime, MatvecJobMatchesReference) {
  const dsp::Matrix8 dct = dsp::dct8_matrix_q7();
  const std::vector<Word> x = signal(5, 32);  // 4 blocks

  Runtime rt({.workers = 2});
  JobResult r = rt.submit(kernels::make_matvec8_job(kGeom, dct, x)).get();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.outputs, dsp::block_matvec8_reference(dct, x));
}

TEST(Runtime, BatchKeepsSubmissionOrder) {
  const std::vector<Word> coeffs{2, 3};
  std::vector<Job> jobs;
  std::vector<std::vector<Word>> want;
  for (std::size_t i = 0; i < 12; ++i) {
    const std::vector<Word> x = signal(100 + i, 48);
    jobs.push_back(kernels::make_spatial_fir_job(kGeom, x, coeffs));
    want.push_back(dsp::fir_reference(x, coeffs));
  }

  Runtime rt({.workers = 3, .queue_capacity = 4});
  const std::vector<JobResult> results = rt.submit_batch(std::move(jobs));
  ASSERT_EQ(results.size(), want.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << i << ": " << results[i].error;
    EXPECT_EQ(results[i].outputs, want[i]) << "job " << i;
  }
}

TEST(Runtime, FailedJobReportsErrorAndFleetSurvives) {
  const std::vector<Word> coeffs{1, 2, 3, 4};
  const std::vector<Word> x = signal(6, 64);

  Runtime rt({.workers = 2});

  Job starved = kernels::make_spatial_fir_job(kGeom, x, coeffs);
  starved.max_cycles = 3;  // cannot possibly produce the outputs
  JobResult bad = rt.submit(std::move(starved)).get();
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());

  Job null_prog;
  null_prog.name = "null";
  JobResult null_res = rt.submit(std::move(null_prog)).get();
  EXPECT_FALSE(null_res.ok);

  // The fleet keeps serving after failures.
  JobResult good =
      rt.submit(kernels::make_spatial_fir_job(kGeom, x, coeffs)).get();
  ASSERT_TRUE(good.ok) << good.error;
  EXPECT_EQ(good.outputs, dsp::fir_reference(x, coeffs));

  const obs::Registry m = rt.metrics();
  ASSERT_NE(m.find_counter("rt.jobs"), nullptr);
  EXPECT_EQ(m.find_counter("rt.jobs")->value(), 3u);
  ASSERT_NE(m.find_counter("rt.jobs_failed"), nullptr);
  EXPECT_EQ(m.find_counter("rt.jobs_failed")->value(), 2u);
}

TEST(Runtime, PoolReusesSystemForSameProgramKey) {
  const std::vector<Word> coeffs{1, 2};
  Runtime rt({.workers = 1});

  JobResult a =
      rt.submit(kernels::make_spatial_fir_job(kGeom, signal(7, 32), coeffs))
          .get();
  JobResult b =
      rt.submit(kernels::make_spatial_fir_job(kGeom, signal(8, 32), coeffs))
          .get();
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_FALSE(a.reused_system);
  EXPECT_TRUE(b.reused_system);  // same key, single worker: fast re-arm
  EXPECT_EQ(b.outputs, dsp::fir_reference(signal(8, 32), coeffs));

  const obs::Registry m = rt.metrics();
  ASSERT_NE(m.find_counter("rt.pool.fast_resets"), nullptr);
  EXPECT_EQ(m.find_counter("rt.pool.fast_resets")->value(), 1u);
}

TEST(Runtime, MetricsAggregateAcrossWorkers) {
  const std::vector<Word> coeffs{1, 2, 3};
  std::vector<Job> jobs;
  std::uint64_t want_cycles = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::vector<Word> x = signal(200 + i, 40);
    jobs.push_back(kernels::make_spatial_fir_job(kGeom, x, coeffs));
    want_cycles += kernels::run_spatial_fir(kGeom, x, coeffs).stats.cycles;
  }

  Runtime rt({.workers = 4});
  const auto results = rt.submit_batch(std::move(jobs));
  for (const auto& r : results) ASSERT_TRUE(r.ok) << r.error;

  const obs::Registry m = rt.metrics();
  ASSERT_NE(m.find_counter("rt.jobs"), nullptr);
  EXPECT_EQ(m.find_counter("rt.jobs")->value(), 8u);
  ASSERT_NE(m.find_counter("rt.sim_cycles"), nullptr);
  EXPECT_EQ(m.find_counter("rt.sim_cycles")->value(), want_cycles);
  ASSERT_NE(m.find_counter("rt.workers"), nullptr);
  EXPECT_EQ(m.find_counter("rt.workers")->value(), 4u);
  ASSERT_NE(m.find_counter("rt.queue.enqueued"), nullptr);
  EXPECT_EQ(m.find_counter("rt.queue.enqueued")->value(), 8u);
  EXPECT_EQ(m.find_counter("rt.queue.dequeued")->value(), 8u);
  ASSERT_NE(m.find_histogram("rt.job_cycles"), nullptr);
  EXPECT_EQ(m.find_histogram("rt.job_cycles")->count(), 8u);

  // Every job landed on some worker; per-worker counts sum to the total.
  std::uint64_t per_worker_sum = 0;
  for (std::size_t w = 0; w < 4; ++w) {
    const auto* c =
        m.find_counter("rt.worker." + std::to_string(w) + ".jobs");
    if (c != nullptr) per_worker_sum += c->value();
  }
  EXPECT_EQ(per_worker_sum, 8u);
}

TEST(Runtime, SubmitAfterShutdownThrows) {
  Runtime rt({.workers = 1});
  rt.shutdown();
  rt.shutdown();  // idempotent
  Job job;
  job.name = "late";
  EXPECT_THROW((void)rt.submit(std::move(job)), SimError);
}

TEST(Runtime, ZeroWorkerConfigFallsBackToHardware) {
  Runtime rt({.workers = 0});
  EXPECT_GE(rt.worker_count(), 1u);
}

}  // namespace
}  // namespace sring::rt
