// Tests for the CORDIC golden model and its ring macro-operator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dsp/cordic.hpp"
#include "kernels/cordic_kernel.hpp"

namespace sring {
namespace {

constexpr double kPi = 3.14159265358979323846;

Word q12(double radians) {
  return to_word(static_cast<std::int64_t>(
      std::llround(radians * dsp::kCordicOne)));
}

TEST(CordicGolden, TableAndGainAnchors) {
  const auto table = dsp::cordic_atan_table();
  EXPECT_EQ(as_signed(table[0]), 3217);  // atan(1) = pi/4 in Q12
  EXPECT_EQ(as_signed(table[1]), 1899);  // atan(1/2)
  // Monotonically decreasing, roughly halving.
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_LT(as_signed(table[i]), as_signed(table[i - 1]));
  }
  // 1/K = 0.60725... -> 2487 in Q12.
  EXPECT_EQ(as_signed(dsp::cordic_k_inv()), 2487);
}

TEST(CordicGolden, MatchesLibmWithinTolerance) {
  for (double deg = -85.0; deg <= 85.0; deg += 5.0) {
    const double rad = deg * kPi / 180.0;
    const auto r = dsp::cordic_rotate(q12(rad));
    const double cos_err =
        as_signed(r.cos_q12) - dsp::kCordicOne * std::cos(rad);
    const double sin_err =
        as_signed(r.sin_q12) - dsp::kCordicOne * std::sin(rad);
    // Truncating (floor) shifts bias the integer datapath slightly;
    // ~8 LSB at Q12 after 12 iterations is the expected envelope.
    EXPECT_LT(std::abs(cos_err), 8.0) << "deg=" << deg;
    EXPECT_LT(std::abs(sin_err), 8.0) << "deg=" << deg;
  }
}

TEST(CordicGolden, KnownAngles) {
  const auto zero = dsp::cordic_rotate(q12(0.0));
  EXPECT_NEAR(as_signed(zero.cos_q12), dsp::kCordicOne, 3);
  EXPECT_NEAR(as_signed(zero.sin_q12), 0, 3);
  const auto right = dsp::cordic_rotate(q12(kPi / 2));
  EXPECT_NEAR(as_signed(right.cos_q12), 0, 4);
  EXPECT_NEAR(as_signed(right.sin_q12), dsp::kCordicOne, 3);
}

TEST(CordicGolden, FewerIterationsAreCoarser) {
  const Word theta = q12(0.7);
  const auto fine = dsp::cordic_rotate(theta, 12);
  const auto coarse = dsp::cordic_rotate(theta, 4);
  const double exact = dsp::kCordicOne * std::sin(0.7);
  EXPECT_LT(std::abs(as_signed(fine.sin_q12) - exact) - 1.0,
            std::abs(as_signed(coarse.sin_q12) - exact));
}

TEST(CordicKernel, BitExactAgainstGoldenModel) {
  const RingGeometry g{8, 2, 16};
  std::vector<Word> thetas;
  for (double deg = -80.0; deg <= 80.0; deg += 16.0) {
    thetas.push_back(q12(deg * kPi / 180.0));
  }
  const auto ring = kernels::run_cordic(g, thetas);
  const auto golden = dsp::cordic_rotate_stream(thetas);
  ASSERT_EQ(ring.outputs.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(ring.outputs[i].cos_q12, golden[i].cos_q12) << i;
    EXPECT_EQ(ring.outputs[i].sin_q12, golden[i].sin_q12) << i;
  }
}

TEST(CordicKernel, WorksWithReducedIterations) {
  const RingGeometry g{4, 2, 16};
  const std::vector<Word> thetas = {q12(0.5), q12(-1.0), q12(1.2)};
  for (const unsigned iters : {1u, 4u, 8u}) {
    const auto ring = kernels::run_cordic(g, thetas, iters);
    const auto golden = dsp::cordic_rotate_stream(thetas, iters);
    for (std::size_t i = 0; i < golden.size(); ++i) {
      EXPECT_EQ(ring.outputs[i].cos_q12, golden[i].cos_q12)
          << "iters=" << iters << " i=" << i;
      EXPECT_EQ(ring.outputs[i].sin_q12, golden[i].sin_q12)
          << "iters=" << iters << " i=" << i;
    }
  }
}

TEST(CordicKernel, CycleBudget) {
  // 5 pages per iteration + load/settle/emit + loop upkeep.
  const RingGeometry g{8, 2, 16};
  const std::vector<Word> thetas(16, q12(0.3));
  const auto ring = kernels::run_cordic(g, thetas);
  EXPECT_LE(ring.cycles_per_sample, 5.0 * 12 + 8);
}

TEST(CordicKernel, RejectsBadConfiguration) {
  const std::vector<Word> thetas = {q12(0.1)};
  EXPECT_THROW(kernels::run_cordic({2, 2, 8}, thetas), SimError);
  EXPECT_THROW(kernels::run_cordic({8, 2, 16}, thetas, 0), SimError);
  EXPECT_THROW(kernels::run_cordic({8, 2, 16}, thetas, 13), SimError);
}

}  // namespace
}  // namespace sring
