// Unit and property tests for the controller instruction format.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "isa/risc_instr.hpp"

namespace sring {
namespace {

TEST(RiscInstr, RoundTripBasics) {
  RiscInstr instr;
  instr.op = RiscOp::kAddi;
  instr.rd = 3;
  instr.ra = 7;
  instr.imm = -42;
  EXPECT_EQ(RiscInstr::decode(instr.encode()), instr);
}

TEST(RiscInstr, RandomRoundTripProperty) {
  // Only fields that the opcode's format carries participate in the
  // encoding; the round-trip contract holds for canonical instructions
  // (unused operand fields zero).
  Rng rng(123);
  for (int i = 0; i < 2000; ++i) {
    RiscInstr instr;
    instr.op = static_cast<RiscOp>(
        rng.next_below(static_cast<std::uint64_t>(RiscOp::kOpCount)));
    const RiscFormat f = format_of(instr.op);
    const bool has_rd = f == RiscFormat::kRdImm || f == RiscFormat::kRdRa ||
                        f == RiscFormat::kRdRaRb ||
                        f == RiscFormat::kRdRaImm || f == RiscFormat::kRd;
    const bool has_ra = f == RiscFormat::kRdRa || f == RiscFormat::kRdRaRb ||
                        f == RiscFormat::kRdRaImm ||
                        f == RiscFormat::kRaRbImm || f == RiscFormat::kRa ||
                        f == RiscFormat::kRaRb;
    const bool has_rb = f == RiscFormat::kRdRaRb ||
                        f == RiscFormat::kRaRbImm || f == RiscFormat::kRaRb;
    const bool has_imm = f == RiscFormat::kRdImm ||
                         f == RiscFormat::kRdRaImm ||
                         f == RiscFormat::kRaRbImm || f == RiscFormat::kImm;
    if (has_rd) instr.rd = static_cast<std::uint8_t>(rng.next_below(16));
    if (has_ra) instr.ra = static_cast<std::uint8_t>(rng.next_below(16));
    if (has_rb) instr.rb = static_cast<std::uint8_t>(rng.next_below(16));
    if (has_imm) {
      if (instr.op == RiscOp::kPage || instr.op == RiscOp::kWait) {
        instr.imm = static_cast<std::int32_t>(rng.next_below(65536));
      } else {
        instr.imm =
            static_cast<std::int32_t>(rng.next_below(65536)) - 32768;
      }
    }
    EXPECT_EQ(RiscInstr::decode(instr.encode()), instr)
        << to_mnemonic(instr.op);
  }
}

TEST(RiscInstr, UnsignedImmediateOps) {
  RiscInstr page;
  page.op = RiscOp::kPage;
  page.imm = 40000;  // > 32767: must survive as unsigned
  EXPECT_EQ(RiscInstr::decode(page.encode()).imm, 40000);

  RiscInstr wait;
  wait.op = RiscOp::kWait;
  wait.imm = 65535;
  EXPECT_EQ(RiscInstr::decode(wait.encode()).imm, 65535);
}

TEST(RiscInstr, EncodeValidation) {
  RiscInstr instr;
  instr.op = RiscOp::kLdi;
  instr.rd = 16;  // out of range
  EXPECT_THROW(instr.encode(), SimError);
  instr.rd = 0;
  instr.imm = 70000;
  EXPECT_THROW(instr.encode(), SimError);
}

TEST(RiscInstr, DecodeRejectsBadOpcode) {
  EXPECT_THROW(RiscInstr::decode(63u << 26), SimError);
}

TEST(RiscInstr, MnemonicRoundTrip) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(RiscOp::kOpCount);
       ++i) {
    const auto op = static_cast<RiscOp>(i);
    const auto parsed = parse_risc_op(to_mnemonic(op));
    ASSERT_TRUE(parsed.has_value()) << to_mnemonic(op);
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_FALSE(parse_risc_op("xyzzy").has_value());
}

TEST(RiscInstr, BranchClassification) {
  EXPECT_TRUE(is_branch(RiscOp::kBeq));
  EXPECT_TRUE(is_branch(RiscOp::kJmp));
  EXPECT_FALSE(is_branch(RiscOp::kAdd));
  EXPECT_FALSE(is_branch(RiscOp::kPage));
}

TEST(RiscInstr, EveryOpcodeHasAFormat) {
  // format_of must be total: printing must not crash for any opcode.
  for (std::size_t i = 0; i < static_cast<std::size_t>(RiscOp::kOpCount);
       ++i) {
    RiscInstr instr;
    instr.op = static_cast<RiscOp>(i);
    EXPECT_FALSE(instr.to_string().empty());
  }
}

TEST(RiscInstr, ToStringShowsOperands) {
  RiscInstr instr;
  instr.op = RiscOp::kAdd;
  instr.rd = 1;
  instr.ra = 2;
  instr.rb = 3;
  EXPECT_EQ(instr.to_string(), "add r1, r2, r3");
  RiscInstr b;
  b.op = RiscOp::kBne;
  b.ra = 4;
  b.rb = 5;
  b.imm = -2;
  EXPECT_EQ(b.to_string(), "bne r4, r5, -2");
}

}  // namespace
}  // namespace sring
