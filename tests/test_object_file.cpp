// Tests for the binary object-file format.
#include <gtest/gtest.h>

#include <cstdio>

#include "asm/assembler.hpp"
#include "asm/object_file.hpp"
#include "common/error.hpp"
#include "asm/program_builder.hpp"

namespace sring {
namespace {

LoadableProgram sample() {
  ProgramBuilder pb({4, 2, 16}, "sample");
  PageBuilder page({4, 2, 16});
  DnodeInstr add;
  add.op = DnodeOp::kAdd;
  add.src_a = DnodeSrc::kIn1;
  add.src_b = DnodeSrc::kIn2;
  add.out_en = true;
  page.instr(0, 0, add);
  SwitchRoute r;
  r.in1 = PortRoute::host();
  r.in2 = PortRoute::host();
  page.route(0, 0, r);
  pb.add_page(page);
  pb.page_switch(0);
  pb.wait(10);
  pb.halt();
  pb.local_program(5, {add});
  return pb.build();
}

TEST(ObjectFile, SerializeDeserializeRoundTrip) {
  const auto original = sample();
  const auto bytes = serialize_program(original);
  const auto restored = deserialize_program(bytes);
  EXPECT_EQ(restored, original);
}

TEST(ObjectFile, EmptyProgramRoundTrips) {
  LoadableProgram p;
  p.geometry = {2, 1, 4};
  EXPECT_EQ(deserialize_program(serialize_program(p)), p);
}

TEST(ObjectFile, DetectsBadMagic) {
  auto bytes = serialize_program(sample());
  bytes[0] ^= 0xFF;
  EXPECT_THROW(deserialize_program(bytes), SimError);
}

TEST(ObjectFile, DetectsTruncation) {
  const auto bytes = serialize_program(sample());
  for (const std::size_t cut : {4u, 16u, 40u}) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + cut);
    EXPECT_THROW(deserialize_program(truncated), SimError);
  }
}

TEST(ObjectFile, DetectsTrailingGarbage) {
  auto bytes = serialize_program(sample());
  bytes.push_back(0);
  EXPECT_THROW(deserialize_program(bytes), SimError);
}

TEST(ObjectFile, DetectsBadGeometry) {
  LoadableProgram p;
  p.geometry = {2, 1, 4};
  auto bytes = serialize_program(p);
  // Geometry starts right after magic+version+name(4 bytes len).
  bytes[12] = 0;  // layers = 0
  EXPECT_THROW(deserialize_program(bytes), SimError);
}

TEST(ObjectFile, SaveAndLoadFile) {
  const auto original = sample();
  const std::string path = "/tmp/sring_test_object.srgo";
  save_program(original, path);
  const auto loaded = load_program(path);
  EXPECT_EQ(loaded, original);
  std::remove(path.c_str());
}

TEST(ObjectFile, LoadMissingFileThrows) {
  EXPECT_THROW(load_program("/nonexistent/path/prog.srgo"), SimError);
}

TEST(ObjectFile, AssembledProgramSurvivesObjectFormat) {
  const auto prog = assemble(R"(
.ring 2 2 8
.controller
    ldi r1, 3
    halt
.page p
    dnode 1.1 { absdiff r2, in1, in2 out }
)");
  EXPECT_EQ(deserialize_program(serialize_program(prog)), prog);
}

}  // namespace
}  // namespace sring
