// Determinism guarantees of the batch-execution runtime:
//
//  * the same batch yields bit-identical per-job outputs and
//    RunReports at 1, 2 and 8 workers (only JobResult provenance —
//    worker index, reused_system — may differ);
//  * a job run on a pooled, re-armed System matches one run on a
//    fresh System;
//  * System::reset_for_rerun restores a System to a state
//    indistinguishable from a fresh load().
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/image.hpp"
#include "common/rng.hpp"
#include "dsp/matvec.hpp"
#include "kernels/dwt_kernel.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/jobs.hpp"
#include "kernels/motion_estimation.hpp"
#include "rt/runtime.hpp"
#include "rt/system_pool.hpp"
#include "sim/report.hpp"
#include "sim/system.hpp"

namespace sring::rt {
namespace {

constexpr RingGeometry kGeom{8, 2, 16};

std::vector<Word> signal(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Word> x(n);
  for (auto& w : x) w = rng.next_word_in(-100, 100);
  return x;
}

Image image(std::uint64_t seed, std::size_t w, std::size_t h) {
  Rng rng(seed);
  Image img(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      img.at(x, y) = rng.next_word_in(0, 255);
    }
  }
  return img;
}

/// Report JSON with the ring.plan.* and ring.superstep.* counters
/// normalized away.  Those counters describe which execution machinery
/// served each cycle — plan-cache warmth carried across reruns and the
/// worker scheduling that decides it — not the simulated machine, and
/// they are the only part of a RunReport allowed to vary between a
/// fresh System, a pooled rerun and different worker counts.
std::string report_normalized(RunReport r) {
  for (const char* name :
       {"ring.plan.compiles", "ring.plan.hits", "ring.plan.invalidations",
        "ring.plan.content_hits", "ring.plan.evictions",
        "ring.plan.seq_fusions", "ring.plan.seq_hits",
        "ring.superstep.dispatches", "ring.superstep.cycles"}) {
    r.metrics.counter(name).set(0);
  }
  return r.to_json().dump();
}

/// A mixed 16-job batch rebuilt identically on every call.
std::vector<Job> mixed_batch() {
  const std::vector<Word> coeffs{1, static_cast<Word>(-2), 3, 4};
  const dsp::Matrix8 dct = dsp::dct8_matrix_q7();
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < 4; ++i) {
    jobs.push_back(
        kernels::make_spatial_fir_job(kGeom, signal(10 + i, 96), coeffs));
    jobs.push_back(kernels::make_motion_estimation_job(
        kGeom, image(20 + i, 16, 16), 4, 4, image(30 + i, 16, 16), 2));
    jobs.push_back(kernels::make_dwt53_job(kGeom, signal(40 + i, 64)));
    jobs.push_back(
        kernels::make_matvec8_job(kGeom, dct, signal(50 + i, 24)));
  }
  return jobs;
}

TEST(RtDeterminism, SameBatchBitIdenticalAcrossWorkerCounts) {
  std::vector<std::vector<Word>> ref_outputs;
  std::vector<std::string> ref_reports;

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    Runtime rt({.workers = workers, .queue_capacity = 8});
    const std::vector<JobResult> results = rt.submit_batch(mixed_batch());
    ASSERT_EQ(results.size(), 16u);

    if (ref_outputs.empty()) {
      for (const auto& r : results) {
        ASSERT_TRUE(r.ok) << r.error;
        ref_outputs.push_back(r.outputs);
        // RunReport carries only simulated state (cycles, ops, FIFO
        // depths) — no wall-clock — so the full JSON must reproduce.
        ref_reports.push_back(report_normalized(r.report));
      }
      continue;
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok) << results[i].error;
      EXPECT_EQ(results[i].outputs, ref_outputs[i])
          << "job " << i << " outputs diverged at " << workers << " workers";
      EXPECT_EQ(report_normalized(results[i].report), ref_reports[i])
          << "job " << i << " report diverged at " << workers << " workers";
    }
  }
}

TEST(RtDeterminism, PooledRerunMatchesFreshSystem) {
  const std::vector<Word> coeffs{3, static_cast<Word>(-1), 2};
  const Job first =
      kernels::make_spatial_fir_job(kGeom, signal(60, 80), coeffs);
  const Job second =
      kernels::make_spatial_fir_job(kGeom, signal(61, 80), coeffs);

  // Fresh System per job = the ground truth.  (Strip the bench extras
  // the kernel helper attaches; the simulated record must match.)
  kernels::FirResult fresh =
      kernels::run_spatial_fir(kGeom, signal(61, 80), coeffs);
  fresh.report.extras = obs::JsonValue::object();

  SystemPool pool(2);
  {
    SystemPool::Lease lease = pool.acquire(first);
    EXPECT_FALSE(lease.reused_program);
    lease.system.host().send(first.input);
    lease.system.run_until_outputs(first.expected_outputs, first.max_cycles);
  }
  SystemPool::Lease lease = pool.acquire(second);
  EXPECT_TRUE(lease.reused_program);  // same key: fast re-arm, no reload
  lease.system.host().send(second.input);
  lease.system.run_until_outputs(second.expected_outputs, second.max_cycles);

  std::vector<Word> got = lease.system.host().take_received();
  got.erase(got.begin(),
            got.begin() + static_cast<std::ptrdiff_t>(second.discard_prefix));
  got.resize(second.take_words);
  EXPECT_EQ(got, fresh.outputs);
  EXPECT_EQ(report_normalized(
                RunReport::from_system("fir.spatial", lease.system)),
            report_normalized(fresh.report));
}

TEST(RtDeterminism, ResetForRerunMatchesFreshLoad) {
  const std::vector<Word> coeffs{1, 2, 3};
  const std::vector<Word> x = signal(70, 48);
  const Job job = kernels::make_spatial_fir_job(kGeom, x, coeffs);

  System reused({kGeom});
  reused.load(*job.program);
  reused.host().send(job.input);
  reused.run_until_outputs(job.expected_outputs, job.max_cycles);
  const std::string first_report =
      report_normalized(RunReport::from_system("run", reused));

  reused.reset_for_rerun(*job.program);
  EXPECT_EQ(reused.cycle(), 0u);
  reused.host().send(job.input);
  reused.run_until_outputs(job.expected_outputs, job.max_cycles);

  System fresh({kGeom});
  fresh.load(*job.program);
  fresh.host().send(job.input);
  fresh.run_until_outputs(job.expected_outputs, job.max_cycles);

  EXPECT_EQ(reused.host().take_received(), fresh.host().take_received());
  EXPECT_EQ(report_normalized(RunReport::from_system("run", reused)),
            report_normalized(RunReport::from_system("run", fresh)));
  EXPECT_EQ(report_normalized(RunReport::from_system("run", fresh)),
            first_report);
}

TEST(RtDeterminism, RerunUnderLinkStallsReproducesStallPattern) {
  // A starved host link forces mid-run ring stalls.  Stalled cycles
  // must advance nothing, so a rerun on the same System — and a fresh
  // System — reproduce the exact stall count and the full report.
  const std::vector<Word> coeffs{2, static_cast<Word>(-1), 4};
  const std::vector<Word> x = signal(90, 64);
  const Job job = kernels::make_spatial_fir_job(kGeom, x, coeffs);
  const LinkRate starved{1, 2};  // one word every two cycles

  System reused({kGeom, starved});
  reused.load(*job.program);
  reused.host().send(job.input);
  reused.run_until_outputs(job.expected_outputs, job.max_cycles);
  const SystemStats first = reused.stats();
  ASSERT_GT(first.ring_stall_cycles, 0u) << "link must actually starve";
  const std::string first_report =
      report_normalized(RunReport::from_system("run", reused));
  const std::vector<Word> first_out = reused.host().take_received();

  reused.reset_for_rerun(*job.program);
  reused.host().send(job.input);
  reused.run_until_outputs(job.expected_outputs, job.max_cycles);
  EXPECT_EQ(reused.stats().ring_stall_cycles, first.ring_stall_cycles);
  EXPECT_EQ(reused.host().take_received(), first_out);
  EXPECT_EQ(report_normalized(RunReport::from_system("run", reused)),
            first_report);

  System fresh({kGeom, starved});
  fresh.load(*job.program);
  fresh.host().send(job.input);
  fresh.run_until_outputs(job.expected_outputs, job.max_cycles);
  EXPECT_EQ(fresh.stats().ring_stall_cycles, first.ring_stall_cycles);
  EXPECT_EQ(report_normalized(RunReport::from_system("run", fresh)),
            first_report);
}

/// Sets SRING_NO_SUPERSTEP for a scope.  Workers construct their
/// Systems while a batch is in flight, so the variable must stay set
/// across the whole submit_batch call.
class ScopedNoSuperstep {
 public:
  ScopedNoSuperstep() { setenv("SRING_NO_SUPERSTEP", "1", 1); }
  ~ScopedNoSuperstep() { unsetenv("SRING_NO_SUPERSTEP"); }
};

TEST(RtDeterminism, SuperstepEngineTransparentAcrossBatch) {
  Runtime fused({.workers = 4, .queue_capacity = 8});
  const std::vector<JobResult> with = fused.submit_batch(mixed_batch());

  std::vector<JobResult> without;
  {
    ScopedNoSuperstep env;
    Runtime percycle({.workers = 4, .queue_capacity = 8});
    without = percycle.submit_batch(mixed_batch());
  }

  ASSERT_EQ(with.size(), without.size());
  std::uint64_t fused_dispatches = 0;
  for (std::size_t i = 0; i < with.size(); ++i) {
    ASSERT_TRUE(with[i].ok) << with[i].error;
    ASSERT_TRUE(without[i].ok) << without[i].error;
    EXPECT_EQ(with[i].outputs, without[i].outputs) << "job " << i;
    EXPECT_EQ(report_normalized(with[i].report),
              report_normalized(without[i].report))
        << "job " << i;
    const obs::Counter* fused_c =
        with[i].report.metrics.find_counter("ring.superstep.dispatches");
    const obs::Counter* plain_c =
        without[i].report.metrics.find_counter("ring.superstep.dispatches");
    ASSERT_NE(fused_c, nullptr);
    ASSERT_NE(plain_c, nullptr);
    fused_dispatches += fused_c->value();
    EXPECT_EQ(plain_c->value(), 0u)
        << "job " << i << ": env knob must reach pooled Systems";
  }
  EXPECT_GT(fused_dispatches, 0u)
      << "default path must actually exercise the superstep engine";
}

TEST(RtDeterminism, WrongProgramForRerunIsRejected) {
  const std::vector<Word> coeffs{1, 2};
  const Job fir = kernels::make_spatial_fir_job(kGeom, signal(80, 32), coeffs);

  System sys({kGeom});
  sys.load(*fir.program);

  // Different geometry: rejected outright.
  const RingGeometry other{6, 2, 16};
  const LoadableProgram narrow =
      kernels::make_spatial_fir_program(other, coeffs);
  EXPECT_THROW(sys.reset_for_rerun(narrow), SimError);

  // Same geometry but a different configware footprint (the SAD
  // engine carries several pages, the FIR one): also rejected.
  const LoadableProgram sad = kernels::make_sad_engine_program(kGeom, 64, 2);
  EXPECT_THROW(sys.reset_for_rerun(sad), SimError);
}

}  // namespace
}  // namespace sring::rt
