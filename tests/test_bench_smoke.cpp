// Smoke test of the benchmark `--json` contract: run real bench
// binaries out of the build tree and validate the RunReport they emit.
// SRING_BENCH_DIR is injected by tests/CMakeLists.txt and the bench
// binaries are declared as test dependencies there.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "json_test_util.hpp"

namespace sring {
namespace {

obs::JsonValue run_bench_for_report(const std::string& binary) {
  const std::string json_path =
      testing::TempDir() + binary + "_report.json";
  const std::string cmd = std::string(SRING_BENCH_DIR) + "/" + binary +
                          " --json " + json_path + " > /dev/null";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << cmd;

  std::ifstream in(json_path);
  EXPECT_TRUE(in.good()) << "bench produced no report: " << json_path;
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(json_path.c_str());
  return test::parse_json(ss.str());
}

TEST(BenchSmoke, Fig6PrototypeEmitsAFullSimulationReport) {
  const obs::JsonValue j = run_bench_for_report("bench_fig6_prototype");
  ASSERT_NE(j.find("schema"), nullptr);
  EXPECT_EQ(j.find("schema")->as_string(), "sring.run_report.v1");
  EXPECT_EQ(j.find("name")->as_string(), "fig6.prototype");

  // The fig. 6 prototype is a 4x2 ring, so the report carries the full
  // per-component breakdown.
  ASSERT_NE(j.find("geometry"), nullptr);
  EXPECT_EQ(j.find("geometry")->find("layers")->as_uint(), 4u);
  EXPECT_EQ(j.find("geometry")->find("lanes")->as_uint(), 2u);
  EXPECT_GT(j.find("cycles")->as_uint(), 0u);
  ASSERT_NE(j.find("stats"), nullptr);
  EXPECT_NE(j.find("stats")->find("utilization"), nullptr);
  ASSERT_NE(j.find("stalls"), nullptr);
  ASSERT_NE(j.find("host"), nullptr);
  ASSERT_NE(j.find("dnodes"), nullptr);
  EXPECT_EQ(j.find("dnodes")->items().size(), 8u);
  ASSERT_NE(j.find("switches"), nullptr);
  EXPECT_EQ(j.find("switches")->items().size(), 4u);
  ASSERT_NE(j.find("metrics"), nullptr);
  EXPECT_NE(j.find("metrics")->find("counters")->find("sys.cycles"),
            nullptr);
  ASSERT_NE(j.find("extras"), nullptr);
  EXPECT_NE(j.find("extras")->find("cycles_per_pixel"), nullptr);
}

TEST(BenchSmoke, Table3SynthesisEmitsAModelOnlyReport) {
  const obs::JsonValue j = run_bench_for_report("bench_table3_synthesis");
  EXPECT_EQ(j.find("schema")->as_string(), "sring.run_report.v1");
  EXPECT_EQ(j.find("name")->as_string(), "table3.synthesis");
  // Analytic model: no simulated machine, so no stats/geometry...
  EXPECT_EQ(j.find("cycles"), nullptr);
  EXPECT_EQ(j.find("geometry"), nullptr);
  // ...everything lives in extras.
  const obs::JsonValue* extras = j.find("extras");
  ASSERT_NE(extras, nullptr);
  ASSERT_NE(extras->find("rows"), nullptr);
  EXPECT_FALSE(extras->find("rows")->items().empty());
  ASSERT_NE(extras->find("anchors_ok"), nullptr);
}

}  // namespace
}  // namespace sring
