// Observation must never perturb the machine: a traced run and an
// untraced run of the same program are cycle-for-cycle and
// bit-for-bit identical, and the instrumented simulator still matches
// the golden DSP models.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "dsp/fir.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/mac_kernel.hpp"
#include "obs/sinks.hpp"
#include "sim/system.hpp"

namespace sring {
namespace {

struct RunCapture {
  std::uint64_t cycles = 0;
  std::vector<Word> outputs;
  std::string stats_text;
};

/// Run the running-MAC program over `pairs` host pairs, optionally
/// traced through `sink`.
RunCapture run_mac(std::size_t pairs, obs::EventSink* sink) {
  const RingGeometry g{4, 2, 16};
  System sys({g});
  sys.load(kernels::make_running_mac_program(g));
  if (sink != nullptr) sys.set_trace(sink);

  Rng rng(7);
  std::vector<Word> interleaved(2 * pairs);
  for (auto& v : interleaved) v = rng.next_word_in(-100, 100);
  sys.host().send(interleaved);
  sys.run_until_outputs(pairs, 4 * pairs + 1000);

  if (sink != nullptr) {
    sys.set_trace(nullptr);
    sink->end();
  }
  RunCapture c;
  c.cycles = sys.cycle();
  c.outputs = sys.host().take_received();
  c.stats_text = sys.stats().to_string();
  return c;
}

TEST(ObsOverhead, TracedRunIsCycleAndBitIdenticalToUntraced) {
  const std::size_t pairs = 10000;  // a >10k-cycle run
  const RunCapture plain = run_mac(pairs, nullptr);
  ASSERT_GE(plain.cycles, 10000u);

  std::ostringstream text_trace;
  obs::TextSink text(text_trace);
  const RunCapture traced = run_mac(pairs, &text);

  EXPECT_EQ(traced.cycles, plain.cycles);
  EXPECT_EQ(traced.outputs, plain.outputs);
  EXPECT_EQ(traced.stats_text, plain.stats_text);

  // And the sink really observed every one of those cycles.
  std::size_t lines = 0;
  for (const char c : text_trace.str()) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, plain.cycles);

  // A structured sink does not perturb the run either.
  std::ostringstream jsonl_trace;
  obs::JsonlSink jsonl(jsonl_trace);
  const RunCapture traced2 = run_mac(pairs, &jsonl);
  EXPECT_EQ(traced2.cycles, plain.cycles);
  EXPECT_EQ(traced2.outputs, plain.outputs);
}

TEST(ObsOverhead, InstrumentedFirStillMatchesTheGoldenModel) {
  const RingGeometry g{8, 2, 16};
  Rng rng(1);
  std::vector<Word> x(2048);
  for (auto& v : x) v = rng.next_word_in(-100, 100);
  const std::vector<Word> coeffs = {1, to_word(-2), 3, 4};

  const auto run = kernels::run_spatial_fir(g, x, coeffs);
  const auto expected = dsp::fir_reference(x, coeffs);
  ASSERT_EQ(run.outputs.size(), expected.size());
  EXPECT_EQ(run.outputs, expected);

  // Deterministic cycle count, twice in a row.
  const auto again = kernels::run_spatial_fir(g, x, coeffs);
  EXPECT_EQ(again.stats.cycles, run.stats.cycles);
  EXPECT_EQ(again.report.to_json().dump(), run.report.to_json().dump());
}

TEST(ObsOverhead, MetricsSnapshotDoesNotPerturbTheRun) {
  const RingGeometry g{4, 2, 16};
  System sys({g});
  sys.load(kernels::make_running_mac_program(g));
  sys.host().send(std::vector<Word>(64, 3));

  System ref({g});
  ref.load(kernels::make_running_mac_program(g));
  ref.host().send(std::vector<Word>(64, 3));

  for (int i = 0; i < 100; ++i) {
    sys.step();
    (void)sys.metrics();  // snapshot every cycle
    ref.step();
  }
  EXPECT_EQ(sys.cycle(), ref.cycle());
  EXPECT_EQ(sys.stats().to_string(), ref.stats().to_string());
  EXPECT_EQ(sys.host().take_received(), ref.host().take_received());
}

}  // namespace
}  // namespace sring
