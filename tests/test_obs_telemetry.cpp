// Live serving telemetry: span timelines, the rolling sampler, the
// flight recorder, and the invariants that make them safe to leave on
// — job outputs stay bit-identical with telemetry on or off, and the
// per-job stamping cost is a bounded fraction of real job wall time.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "json_test_util.hpp"
#include "kernels/jobs.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/span.hpp"
#include "rt/runtime.hpp"

namespace sring {
namespace {

using obs::SpanTimeline;

/// Flips the process-wide telemetry switch for one scope.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(bool on) : prev_(obs::telemetry_enabled()) {
    obs::set_telemetry_enabled(on);
  }
  ~ScopedTelemetry() { obs::set_telemetry_enabled(prev_); }

 private:
  bool prev_;
};

constexpr RingGeometry kGeom{8, 2, 16};

std::vector<Word> signal(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Word> x(n);
  for (auto& w : x) w = rng.next_word_in(-100, 100);
  return x;
}

std::vector<rt::Job> small_batch(std::size_t jobs) {
  const std::vector<Word> coeffs{1, static_cast<Word>(-2), 3, 4};
  std::vector<rt::Job> out;
  for (std::size_t i = 0; i < jobs; ++i) {
    out.push_back(
        kernels::make_spatial_fir_job(kGeom, signal(100 + i, 96), coeffs));
  }
  return out;
}

TEST(SpanTimeline, StampsDeriveMonotonicDurations) {
  ScopedTelemetry on(true);
  SpanTimeline tl;
  tl.stamp(SpanTimeline::kEnqueued);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  tl.stamp(SpanTimeline::kDequeued);
  tl.stamp(SpanTimeline::kArmed);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  tl.stamp(SpanTimeline::kExecuted);
  tl.stamp(SpanTimeline::kCompleted);

  for (const auto p :
       {SpanTimeline::kEnqueued, SpanTimeline::kDequeued,
        SpanTimeline::kArmed, SpanTimeline::kExecuted,
        SpanTimeline::kCompleted}) {
    EXPECT_TRUE(tl.has(p));
  }
  EXPECT_GE(tl.queue_wait_us(), 1000u);
  EXPECT_GE(tl.execute_us(), 1000u);
  // The whole span covers every phase in between.
  EXPECT_GE(tl.total_us(),
            tl.queue_wait_us() + tl.arm_us() + tl.execute_us());
}

TEST(SpanTimeline, AbsentPhasesReadAsZeroDurations) {
  const SpanTimeline tl;
  EXPECT_FALSE(tl.has(SpanTimeline::kEnqueued));
  EXPECT_EQ(tl.queue_wait_us(), 0u);
  EXPECT_EQ(tl.total_us(), 0u);

  SpanTimeline half;
  half.stamp(SpanTimeline::kDequeued);
  // kEnqueued missing -> every duration touching it is zero.
  EXPECT_EQ(half.queue_wait_us(), 0u);
}

TEST(SpanTimeline, DisabledTelemetryStampsNothing) {
  ScopedTelemetry off(false);
  SpanTimeline tl;
  tl.stamp(SpanTimeline::kEnqueued);
  tl.stamp(SpanTimeline::kCompleted);
  EXPECT_FALSE(tl.has(SpanTimeline::kEnqueued));
  EXPECT_FALSE(tl.has(SpanTimeline::kCompleted));
  EXPECT_EQ(tl.total_us(), 0u);
}

TEST(Sampler, DerivesDeltasAndRatesFromSnapshots) {
  obs::Sampler sampler({4, {"jobs", "bytes"}});
  const auto t0 = obs::Sampler::Clock::time_point{} +
                  std::chrono::seconds(100);

  obs::Registry reg;
  reg.counter("jobs").set(10);
  sampler.sample(reg, t0);
  EXPECT_EQ(sampler.size(), 1u);
  EXPECT_TRUE(sampler.rates().empty()) << "one point has no interval";

  reg.counter("jobs").set(110);
  reg.counter("bytes").set(2000);
  sampler.sample(reg, t0 + std::chrono::seconds(2));

  const auto points = sampler.points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].offset_us, 0u);
  EXPECT_EQ(points[1].offset_us, 2'000'000u);
  EXPECT_EQ(points[1].interval_us, 2'000'000u);
  EXPECT_EQ(points[1].totals, (std::vector<std::uint64_t>{110, 2000}));
  EXPECT_EQ(points[1].deltas, (std::vector<std::uint64_t>{100, 2000}));

  const auto rates = sampler.rates();
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates[0].first, "jobs");
  EXPECT_DOUBLE_EQ(rates[0].second, 50.0);   // 100 over 2 s
  EXPECT_DOUBLE_EQ(rates[1].second, 1000.0);  // 2000 over 2 s
}

TEST(Sampler, ClampsRegressionsAndBoundsTheRing) {
  obs::Sampler sampler({3, {"c"}});
  const auto t0 = obs::Sampler::Clock::time_point{} +
                  std::chrono::seconds(5);
  obs::Registry reg;
  for (int i = 0; i < 6; ++i) {
    // 50, 40, 30, ... — a counter that runs backwards (restarted
    // registry) must clamp its delta to 0, not underflow.
    reg.counter("c").set(static_cast<std::uint64_t>(50 - 10 * i));
    sampler.sample(reg, t0 + std::chrono::seconds(i));
  }
  EXPECT_EQ(sampler.size(), 3u) << "ring holds the newest 3 points";
  for (const auto& p : sampler.points()) {
    EXPECT_EQ(p.deltas[0], 0u);
  }
}

TEST(Sampler, JsonlPointsParse) {
  obs::Sampler sampler({8, {"x"}});
  const auto t0 = obs::Sampler::Clock::time_point{} +
                  std::chrono::seconds(1);
  obs::Registry reg;
  reg.counter("x").set(1);
  sampler.sample(reg, t0);
  reg.counter("x").set(4);
  sampler.sample(reg, t0 + std::chrono::milliseconds(500));

  std::ostringstream os;
  sampler.write_jsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    const obs::JsonValue j = test::parse_json(line);
    EXPECT_NE(j.find("offset_us"), nullptr);
    EXPECT_NE(j.find("totals")->find("x"), nullptr);
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

obs::SpanRecord record(std::uint64_t trace, std::uint32_t e2e_us,
                       bool ok) {
  obs::SpanRecord r;
  r.trace_id = trace;
  r.name = "job";
  r.ok = ok;
  if (!ok) r.error = "boom";
  r.e2e_us = e2e_us;
  return r;
}

TEST(FlightRecorder, PinsSlowAndFailedJobs) {
  obs::FlightRecorder rec({8, 8, 1000});
  rec.record(record(1, 10, true));     // fast, ok: recent only
  rec.record(record(2, 5000, true));   // slow: captured
  rec.record(record(3, 10, false));    // failed: captured

  EXPECT_EQ(rec.recorded(), 3u);
  EXPECT_EQ(rec.recent().size(), 3u);
  const auto captured = rec.captured();
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].trace_id, 2u);
  EXPECT_TRUE(captured[0].slow);
  EXPECT_EQ(captured[1].trace_id, 3u);
  EXPECT_FALSE(captured[1].ok);

  // Threshold 0: nothing is slow on time alone, errors still pin.
  obs::FlightRecorder lax({4, 4, 0});
  lax.record(record(9, 1'000'000, true));
  EXPECT_TRUE(lax.captured().empty());
  lax.record(record(10, 1, false));
  EXPECT_EQ(lax.captured().size(), 1u);
}

TEST(FlightRecorder, RingsKeepTheNewestRecords) {
  obs::FlightRecorder rec({2, 2, 100});
  for (std::uint64_t i = 0; i < 5; ++i) {
    rec.record(record(i, 1000, true));  // all slow -> both rings fill
  }
  EXPECT_EQ(rec.recorded(), 5u);
  EXPECT_EQ(rec.captured_total(), 5u);
  const auto recent = rec.recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].trace_id, 3u);
  EXPECT_EQ(recent[1].trace_id, 4u);
  EXPECT_EQ(rec.captured().size(), 2u);
}

TEST(FlightRecorder, JsonlDumpCoversTheCapturedRing) {
  obs::FlightRecorder rec({4, 4, 100});
  rec.record(record(7, 500, true));
  rec.record(record(8, 1, false));
  std::ostringstream os;
  rec.write_jsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  std::vector<obs::JsonValue> parsed;
  while (std::getline(lines, line)) {
    parsed.push_back(test::parse_json(line));
  }
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].find("trace_id")->as_uint(), 7u);
  EXPECT_NE(parsed[0].find("e2e_us"), nullptr);
  EXPECT_EQ(parsed[1].find("error")->as_string(), "boom");
}

TEST(RtTelemetry, JobResultsCarryTimelinesAndTraceIds) {
  ScopedTelemetry on(true);
  rt::Runtime runtime({.workers = 2, .queue_capacity = 8});
  std::vector<rt::Job> jobs = small_batch(4);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].trace_id = 0xABC0 + i;
  }
  const auto results = runtime.submit_batch(std::move(jobs));
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << results[i].error;
    EXPECT_EQ(results[i].trace_id, 0xABC0 + i);
    const SpanTimeline& tl = results[i].timeline;
    EXPECT_TRUE(tl.has(SpanTimeline::kEnqueued));
    EXPECT_TRUE(tl.has(SpanTimeline::kDequeued));
    EXPECT_TRUE(tl.has(SpanTimeline::kArmed));
    EXPECT_TRUE(tl.has(SpanTimeline::kExecuted));
    EXPECT_TRUE(tl.has(SpanTimeline::kCompleted));
    EXPECT_GT(tl.total_us(), 0u);
  }

  // The fleet snapshot folded the per-phase latency histograms and
  // cumulative busy time in.
  const obs::Registry m = runtime.metrics();
  for (const char* name :
       {"rt.latency.queue_wait_us", "rt.latency.arm_us",
        "rt.latency.execute_us"}) {
    const obs::Histogram* h = m.find_histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->count(), 4u) << name;
  }
  ASSERT_NE(m.find_counter("rt.busy_us"), nullptr);
  EXPECT_GT(m.find_counter("rt.busy_us")->value(), 0u);
}

TEST(RtTelemetry, OutputsBitIdenticalWithTelemetryOff) {
  // One worker so job -> worker assignment (and with it per-system
  // plan-cache state, ring.plan.* counters) is identical in both
  // runs; with 2 workers the assignment is scheduling-dependent and
  // the report comparison below flakes.
  std::vector<std::vector<Word>> on_outputs;
  std::vector<std::string> on_reports;
  {
    ScopedTelemetry on(true);
    rt::Runtime runtime({.workers = 1, .queue_capacity = 8});
    for (const auto& r : runtime.submit_batch(small_batch(6))) {
      ASSERT_TRUE(r.ok) << r.error;
      on_outputs.push_back(r.outputs);
      on_reports.push_back(r.report.to_json().dump());
    }
  }

  ScopedTelemetry off(false);
  rt::Runtime runtime({.workers = 1, .queue_capacity = 8});
  const auto results = runtime.submit_batch(small_batch(6));
  ASSERT_EQ(results.size(), on_outputs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << results[i].error;
    EXPECT_EQ(results[i].outputs, on_outputs[i]) << "job " << i;
    EXPECT_EQ(results[i].report.to_json().dump(), on_reports[i])
        << "job " << i;
    // ...and the timeline really was off, not just ignored.
    EXPECT_FALSE(results[i].timeline.has(SpanTimeline::kEnqueued));
  }
  EXPECT_EQ(runtime.metrics().find_histogram("rt.latency.execute_us"),
            nullptr);
}

TEST(RtTelemetry, StampingOverheadIsBoundedFractionOfJobTime) {
  ScopedTelemetry on(true);

  // Direct cost of the full 5-stamp lifecycle, amortized over many
  // timelines (steady_clock reads dominate; everything else is array
  // stores).  Best of several rounds: preemption by other test
  // processes (ctest -j on a small host) only ever inflates a round,
  // so the minimum is the honest estimate of the stamping cost.
  constexpr std::size_t kTimelines = 20000;
  constexpr int kRounds = 5;
  std::vector<SpanTimeline> tls(64);
  double per_job_ns = std::numeric_limits<double>::infinity();
  for (int round = 0; round < kRounds; ++round) {
    const auto c0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kTimelines; ++i) {
      SpanTimeline& tl = tls[i % tls.size()];
      tl.stamp(SpanTimeline::kEnqueued);
      tl.stamp(SpanTimeline::kDequeued);
      tl.stamp(SpanTimeline::kArmed);
      tl.stamp(SpanTimeline::kExecuted);
      tl.stamp(SpanTimeline::kCompleted);
    }
    const auto c1 = std::chrono::steady_clock::now();
    per_job_ns = std::min(
        per_job_ns,
        std::chrono::duration<double, std::nano>(c1 - c0).count() /
            static_cast<double>(kTimelines));
  }

  // Real mean job wall time on this host, measured from the jobs'
  // own telemetry (execute phase only — the most conservative
  // denominator: overhead vs pure simulation time, no queue wait).
  rt::Runtime runtime({.workers = 1, .queue_capacity = 8});
  const auto results = runtime.submit_batch(small_batch(4));
  double mean_execute_ns = 0.0;
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok) << r.error;
    mean_execute_ns += 1000.0 * static_cast<double>(r.timeline.execute_us());
  }
  mean_execute_ns /= static_cast<double>(results.size());
  ASSERT_GT(mean_execute_ns, 0.0);

  // The ISSUE pins telemetry overhead at <= 2% of job throughput; the
  // stamping path must clear it with a wide margin.
  EXPECT_LT(per_job_ns, 0.02 * mean_execute_ns)
      << "telemetry stamping costs " << per_job_ns
      << " ns/job against a mean execute time of " << mean_execute_ns
      << " ns";
}

}  // namespace
}  // namespace sring
