// Tests pinning the technology/performance/SoC models to the paper's
// published anchors.
#include <gtest/gtest.h>

#include "model/perf.hpp"
#include "model/soc.hpp"
#include "model/tech.hpp"

namespace sring::model {
namespace {

TEST(Tech, Table3AnchorsReproduced) {
  const TechNode t25 = tech_025um();
  const TechNode t18 = tech_018um();
  // Dnode areas (Table 3).
  EXPECT_DOUBLE_EQ(t25.dnode_area_mm2, 0.06);
  EXPECT_DOUBLE_EQ(t18.dnode_area_mm2, 0.04);
  // Ring-8 core areas (Table 3).
  EXPECT_NEAR(core_area_mm2(t25, 8), 0.9, 1e-9);
  EXPECT_NEAR(core_area_mm2(t18, 8), 0.7, 1e-9);
  // Frequencies (Table 3).
  EXPECT_DOUBLE_EQ(frequency_mhz(t25, 8), 180.0);
  EXPECT_DOUBLE_EQ(frequency_mhz(t18, 8), 200.0);
}

TEST(Tech, Table2AndFig7AnchorsReproduced) {
  // Ring-16 at 0.25um = 1.4 mm2 (Table 2's area row).
  EXPECT_NEAR(core_area_mm2(tech_025um(), 16), 1.4, 1e-9);
  // Ring-64 at 0.18um = 3.4 mm2 (fig. 7).
  EXPECT_NEAR(core_area_mm2(tech_018um(), 64), 3.4, 1e-9);
}

TEST(Tech, AreaGrowsLinearly) {
  const TechNode t = tech_018um();
  const double a8 = core_area_mm2(t, 8);
  const double a16 = core_area_mm2(t, 16);
  const double a32 = core_area_mm2(t, 32);
  EXPECT_NEAR(a32 - a16, 2.0 * (a16 - a8), 1e-9);
}

TEST(Tech, FrequencyIndependentOfSize) {
  const TechNode t = tech_018um();
  EXPECT_DOUBLE_EQ(frequency_mhz(t, 4), frequency_mhz(t, 256));
}

TEST(Tech, DnodeShareApproachesAsymptote) {
  const TechNode t = tech_018um();
  // Bigger rings amortize the fixed controller: the Dnode silicon
  // share must increase with N and stay below the per-dnode asymptote.
  const double s8 = dnode_area_share(t, 8);
  const double s64 = dnode_area_share(t, 64);
  EXPECT_GT(s64, s8);
  EXPECT_LT(s64, t.dnode_area_mm2 /
                     (t.dnode_area_mm2 + t.per_dnode_overhead_mm2));
}

TEST(Perf, HeadlineNumbers) {
  // "1600 MIPS" for Ring-8 at 200 MHz.
  EXPECT_DOUBLE_EQ(peak_mips(8, 200.0), 1600.0);
  // "about 3 Gbytes/s": 8 Dnodes x 2 bytes x 200 MHz = 3.2e9.
  EXPECT_DOUBLE_EQ(peak_bandwidth_bytes_per_s(8, 200.0), 3.2e9);
  EXPECT_DOUBLE_EQ(peak_mops(8, 200.0), 3200.0);
}

TEST(Perf, SustainedFromStats) {
  SystemStats stats;
  stats.cycles = 1000;
  stats.dnode_ops = 800;
  stats.host_words_in = 500;
  stats.host_words_out = 300;
  // 800 ops in 1000 cycles at 200 MHz -> 160 MIPS.
  EXPECT_NEAR(sustained_mips(stats, 200.0), 160.0, 1e-9);
  // 800 words = 1600 bytes in 5 us -> 320 MB/s.
  EXPECT_NEAR(sustained_bandwidth_bytes_per_s(stats, 200.0), 3.2e8, 1e-3);
}

TEST(Soc, Fig7InventoryFits) {
  const SocFloorplan soc = foreseeable_soc();
  EXPECT_DOUBLE_EQ(soc.die_area_mm2(), 12.0);
  EXPECT_TRUE(soc.fits());
  // Ring-64 and ARM7 blocks match the figure's annotations.
  bool ring = false;
  bool arm = false;
  for (const auto& b : soc.blocks) {
    if (b.name == "ring64") {
      EXPECT_NEAR(b.area_mm2, 3.4, 1e-9);
      ring = true;
    }
    if (b.name == "arm7tdmi") {
      EXPECT_DOUBLE_EQ(b.area_mm2, 0.54);
      arm = true;
    }
  }
  EXPECT_TRUE(ring && arm);
  EXPECT_FALSE(soc.to_string().empty());
}

}  // namespace
}  // namespace sring::model
