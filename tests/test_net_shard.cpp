// Loopback tests of the sharded serving front end: N-shard counter
// totals match the single-shard server, pipelined frames correlate by
// tag with per-frame version mirroring, SubmitJobBatch round-trips
// bit-exact, malformed bytes mid-burst cost exactly one connection,
// drain completes queued frames, and the queue-depth watermarks
// accept/defer/shed with the retry_after_ms hint.  Every socket
// carries a receive deadline so a regression fails instead of hanging.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "rt/runtime.hpp"

namespace sring::net {
namespace {

constexpr RingGeometry kGeom{8, 2, 16};

/// Server + run() thread with drain-on-destruction (same shape as
/// test_net_server.cpp).
struct TestServer {
  explicit TestServer(ServerConfig cfg = {})
      : server(std::move(cfg)), thread([this] { server.run(); }) {}
  ~TestServer() { stop(); }

  void stop() {
    if (thread.joinable()) {
      server.request_drain();
      thread.join();
    }
  }

  Server server;
  std::thread thread;
};

/// Minimal blocking socket for byte-level pipelining tests.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    check(fd_ >= 0, "test: socket() failed");
    timeval tv{};
    tv.tv_sec = 10;  // receive deadline: fail, don't hang
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    check(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0,
          "test: connect() failed: " + std::string(std::strerror(errno)));
  }
  ~RawConn() { close(); }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void send_all(std::span<const std::uint8_t> bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << std::strerror(errno);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Next complete frame; false on orderly EOF or deadline.
  bool recv_frame(Frame& out) {
    std::uint8_t chunk[4096];
    while (true) {
      std::size_t consumed = 0;
      const ParseStatus status =
          try_parse_frame(in_, kDefaultMaxFrameBytes, out, consumed);
      if (status == ParseStatus::kFrame) {
        in_.erase(in_.begin(),
                  in_.begin() + static_cast<std::ptrdiff_t>(consumed));
        return true;
      }
      EXPECT_EQ(status, ParseStatus::kNeedMore);
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      in_.insert(in_.end(), chunk, chunk + n);
    }
  }

  bool recv_eof() {
    std::uint8_t chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    return n == 0;
  }

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> in_;
};

ClientConfig client_config(std::uint16_t port) {
  ClientConfig cfg;
  cfg.port = port;
  cfg.io_timeout_ms = 10000;  // deadline, not a hang
  return cfg;
}

/// A cheap deterministic FIR job; `salt` varies the input words.
JobRequest small_fir(std::uint32_t salt) {
  JobRequest req;
  req.kernel = KernelId::kFir;
  req.geometry = kGeom;
  req.fir_coeffs = {1, static_cast<Word>(-2), 3};
  req.input.resize(48);
  Rng rng(0xABBA0000ull + salt);
  for (auto& w : req.input) w = rng.next_word_in(-128, 127);
  return req;
}

/// A FIR job fat enough to pin one worker for several milliseconds.
JobRequest fat_fir() {
  JobRequest req;
  req.kernel = KernelId::kFir;
  req.geometry = kGeom;
  req.fir_coeffs = {1, 2};
  req.input.resize(131072);
  for (std::size_t i = 0; i < req.input.size(); ++i) {
    req.input[i] = static_cast<Word>(i & 0x7F);
  }
  return req;
}

std::vector<Word> local_outputs(const JobRequest& req) {
  rt::Runtime local({.workers = 1});
  rt::JobResult r = local.submit(to_rt_job(req)).get();
  check(r.ok, "test: local reference failed: " + r.error);
  return std::move(r.outputs);
}

std::uint64_t counter(const obs::Registry& m, const std::string& name) {
  const obs::Counter* c = m.find_counter(name);
  return c == nullptr ? 0 : c->value();
}

// ---------------------------------------------------------------------------
// Shard-count invariance

// The same workload against shards=1 and shards=3 lands identical
// shared totals; per-shard slices add up and every shard carried
// connections (round-robin handoff reached them all).
TEST(NetShard, CountersMatchSingleShardTotals) {
  constexpr std::size_t kConns = 3;
  constexpr std::size_t kJobsPerConn = 4;

  std::vector<JobRequest> reqs;
  std::vector<std::vector<Word>> expected;
  for (std::size_t i = 0; i < kJobsPerConn; ++i) {
    reqs.push_back(small_fir(static_cast<std::uint32_t>(i)));
    expected.push_back(local_outputs(reqs.back()));
  }

  std::vector<obs::Registry> metrics;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    ServerConfig scfg;
    scfg.runtime.workers = 2;
    scfg.shards = shards;
    TestServer ts(scfg);
    EXPECT_EQ(ts.server.shard_count(), shards);
    {
      std::vector<std::unique_ptr<Client>> clients;
      for (std::size_t c = 0; c < kConns; ++c) {
        clients.push_back(
            std::make_unique<Client>(client_config(ts.server.port())));
        clients.back()->connect();
      }
      for (std::size_t c = 0; c < kConns; ++c) {
        const auto results = clients[c]->submit_batch(reqs);
        ASSERT_EQ(results.size(), reqs.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
          ASSERT_TRUE(results[i].ok) << results[i].error;
          EXPECT_EQ(results[i].outputs, expected[i]);
        }
      }
    }
    ts.stop();
    metrics.push_back(ts.server.metrics());
  }

  constexpr std::uint64_t kJobs = kConns * kJobsPerConn;
  for (const auto& m : metrics) {
    EXPECT_EQ(counter(m, "net.jobs.completed"), kJobs);
    EXPECT_EQ(counter(m, "net.jobs.submitted"), kJobs);
    EXPECT_EQ(counter(m, "net.jobs.failed"), 0u);
    EXPECT_EQ(counter(m, "net.admission.accepted"), kJobs);
    EXPECT_EQ(counter(m, "net.connections.accepted"), kConns);
    // Per-shard latency registries merge into one view: every job
    // produced exactly one e2e sample.
    const obs::Histogram* e2e = m.find_histogram("net.latency.e2e_us");
    ASSERT_NE(e2e, nullptr);
    EXPECT_EQ(e2e->count(), kJobs);
  }
  EXPECT_EQ(counter(metrics[0], "net.shards"), 1u);
  EXPECT_EQ(counter(metrics[1], "net.shards"), 3u);

  // The per-shard slices add up to the shared totals, and round-robin
  // spread the three connections across all three shards.
  std::uint64_t shard_jobs = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    const std::string prefix = "net.shard." + std::to_string(s);
    shard_jobs += counter(metrics[1], prefix + ".jobs");
    EXPECT_EQ(counter(metrics[1], prefix + ".connections"), 1u)
        << prefix;
  }
  EXPECT_EQ(shard_jobs, kJobs);
}

// ---------------------------------------------------------------------------
// Frame pipelining

// A burst of frames pipelined down one connection correlates replies
// by tag; completion order is free but every tag answers bit-exact.
TEST(NetShard, PipelinedBurstCorrelatesByTag) {
  ServerConfig scfg;
  scfg.runtime.workers = 2;
  scfg.shards = 2;
  TestServer ts(scfg);

  constexpr std::uint32_t kBurst = 10;
  std::map<std::uint32_t, std::vector<Word>> expected;
  std::vector<std::uint8_t> wire;
  for (std::uint32_t tag = 1; tag <= kBurst; ++tag) {
    JobRequest req = small_fir(tag);
    req.tag = tag;
    expected[tag] = local_outputs(req);
    append_frame(wire, MsgType::kSubmitJob, encode_job_request(req));
  }
  RawConn raw(ts.server.port());
  raw.send_all(wire);

  std::map<std::uint32_t, std::vector<Word>> got;
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    Frame frame;
    ASSERT_TRUE(raw.recv_frame(frame)) << "reply " << i << " missing";
    ASSERT_EQ(frame.type, MsgType::kJobResult);
    const JobResultMsg msg = decode_job_result(frame.payload);
    EXPECT_EQ(got.count(msg.tag), 0u) << "duplicate tag " << msg.tag;
    got[msg.tag] = msg.outputs;
  }
  EXPECT_EQ(got, expected);
}

// Interleaved v1/v2 frames on one pipelined connection: each reply
// mirrors the exact protocol version of the frame that requested it,
// header and payload both.
TEST(NetShard, InterleavedVersionsMirrorPerFrame) {
  ServerConfig scfg;
  scfg.runtime.workers = 2;
  TestServer ts(scfg);

  constexpr std::uint32_t kBurst = 8;
  std::vector<std::uint8_t> wire;
  std::map<std::uint32_t, std::uint16_t> version_of;
  for (std::uint32_t tag = 1; tag <= kBurst; ++tag) {
    const std::uint16_t v = (tag % 2 == 1) ? 1 : 2;
    JobRequest req = small_fir(tag);
    req.tag = tag;
    req.trace_id = 0x5500 + tag;
    version_of[tag] = v;
    append_frame(wire, MsgType::kSubmitJob, encode_job_request(req, v),
                 v);
  }
  RawConn raw(ts.server.port());
  raw.send_all(wire);

  for (std::uint32_t i = 0; i < kBurst; ++i) {
    Frame frame;
    ASSERT_TRUE(raw.recv_frame(frame)) << "reply " << i << " missing";
    ASSERT_EQ(frame.type, MsgType::kJobResult);
    const JobResultMsg msg =
        decode_job_result(frame.payload, frame.version);
    ASSERT_EQ(version_of.count(msg.tag), 1u);
    EXPECT_EQ(frame.version, version_of[msg.tag]) << "tag " << msg.tag;
    // The v2 telemetry tail exists exactly when the request was v2.
    if (frame.version >= 2) {
      EXPECT_EQ(msg.trace_id, 0x5500 + msg.tag);
    } else {
      EXPECT_EQ(msg.trace_id, 0u);
    }
  }
}

// Malformed bytes mid-burst cost exactly that connection: the frames
// parsed before the damage are answered or forfeited, the peer sees
// Error{kBadRequest} + close, and other connections never notice.
TEST(NetShard, MalformedFrameMidBurstCostsOneConnection) {
  ServerConfig scfg;
  scfg.runtime.workers = 1;
  scfg.shards = 2;
  TestServer ts(scfg);

  Client healthy(client_config(ts.server.port()));
  healthy.connect();

  RawConn raw(ts.server.port());
  std::vector<std::uint8_t> wire;
  for (std::uint32_t tag = 1; tag <= 2; ++tag) {
    JobRequest req = small_fir(tag);
    req.tag = tag;
    append_frame(wire, MsgType::kSubmitJob, encode_job_request(req));
  }
  const char* garbage = "NOPE not a frame";
  wire.insert(wire.end(),
              reinterpret_cast<const std::uint8_t*>(garbage),
              reinterpret_cast<const std::uint8_t*>(garbage) +
                  std::strlen(garbage));
  raw.send_all(wire);

  // Results may race the parse error; the error must arrive, then EOF.
  bool saw_error = false;
  Frame frame;
  while (raw.recv_frame(frame)) {
    if (frame.type == MsgType::kError) {
      EXPECT_EQ(decode_error(frame.payload, frame.version).code,
                ErrorCode::kBadRequest);
      saw_error = true;
    } else {
      EXPECT_EQ(frame.type, MsgType::kJobResult);
    }
  }
  EXPECT_TRUE(saw_error);

  // The other connection (other shard) is untouched.
  EXPECT_GT(healthy.ping(), 0.0);
  const RemoteResult r = healthy.submit(small_fir(77));
  EXPECT_TRUE(r.ok) << r.error;
}

// Drain with frames already parsed and queued: every accepted job is
// answered before the connection closes.
TEST(NetShard, DrainCompletesQueuedFramesBeforeClosing) {
  ServerConfig scfg;
  scfg.runtime.workers = 1;
  scfg.runtime.queue_capacity = 16;
  scfg.shards = 2;
  TestServer ts(scfg);

  constexpr std::uint32_t kBurst = 4;
  std::vector<std::uint8_t> wire;
  for (std::uint32_t tag = 1; tag <= kBurst; ++tag) {
    JobRequest req = fat_fir();
    req.tag = tag;
    append_frame(wire, MsgType::kSubmitJob, encode_job_request(req));
  }
  RawConn raw(ts.server.port());
  raw.send_all(wire);

  // Let the shard parse and admit the burst, then drain mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ts.server.request_drain();

  std::size_t results = 0;
  Frame frame;
  while (raw.recv_frame(frame)) {
    ASSERT_EQ(frame.type, MsgType::kJobResult);
    ++results;
  }
  EXPECT_EQ(results, kBurst);
  ts.stop();
  const auto m = ts.server.metrics();
  EXPECT_EQ(counter(m, "net.jobs.completed"), kBurst);
}

// A pipelined client that disconnects mid-burst forfeits its replies
// without hurting the fleet or other connections.
TEST(NetShard, MidBurstDisconnectLeavesServerHealthy) {
  ServerConfig scfg;
  scfg.runtime.workers = 1;
  scfg.shards = 2;
  TestServer ts(scfg);

  {
    RawConn raw(ts.server.port());
    std::vector<std::uint8_t> wire;
    for (std::uint32_t tag = 1; tag <= 6; ++tag) {
      JobRequest req = fat_fir();
      req.tag = tag;
      append_frame(wire, MsgType::kSubmitJob, encode_job_request(req));
    }
    raw.send_all(wire);
    // Hang up with every job still in flight.
  }

  Client client(client_config(ts.server.port()));
  const RemoteResult r = client.submit(small_fir(5));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.outputs, local_outputs(small_fir(5)));
}

// ---------------------------------------------------------------------------
// Batched submits (protocol v5)

TEST(NetShard, BatchWireRoundTripsBitExact) {
  ServerConfig scfg;
  scfg.runtime.workers = 2;
  scfg.shards = 2;
  TestServer ts(scfg);

  std::vector<JobRequest> reqs;
  std::vector<std::vector<Word>> expected;
  for (std::uint32_t i = 0; i < 6; ++i) {
    reqs.push_back(small_fir(0x600 + i));
    expected.push_back(local_outputs(reqs.back()));
  }

  Client client(client_config(ts.server.port()));
  const auto results = client.submit_batch_wire(reqs, 0xDEAD);
  ASSERT_EQ(results.size(), reqs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok)
        << "entry " << i << ": "
        << (results[i].busy ? "busy" : results[i].error);
    EXPECT_EQ(results[i].outputs, expected[i]) << "entry " << i;
    EXPECT_EQ(results[i].trace_id, 0xDEADu);
  }

  // An empty batch settles client-side without touching the wire.
  EXPECT_TRUE(client.submit_batch_wire({}).empty());

  ts.stop();
  const auto m = ts.server.metrics();
  EXPECT_EQ(counter(m, "net.batch.requests"), 1u);
  EXPECT_EQ(counter(m, "net.batch.jobs"), reqs.size());
  EXPECT_EQ(counter(m, "net.jobs.completed"), reqs.size());
}

// A client hanging up between SubmitJobBatch and the reply forfeits
// the batch; the server survives and serves the next client.
TEST(NetShard, MidBatchDisconnectLeavesServerHealthy) {
  ServerConfig scfg;
  scfg.runtime.workers = 1;
  scfg.shards = 2;
  TestServer ts(scfg);

  {
    SubmitJobBatchMsg msg;
    msg.tag = 9;
    for (std::uint32_t i = 0; i < 4; ++i) {
      JobRequest req = fat_fir();
      req.tag = i + 1;
      msg.jobs.push_back(std::move(req));
    }
    RawConn raw(ts.server.port());
    std::vector<std::uint8_t> wire;
    append_frame(wire, MsgType::kSubmitJobBatch,
                 encode_submit_job_batch(msg));
    raw.send_all(wire);
    // Hang up with the whole batch still executing.
  }

  Client client(client_config(ts.server.port()));
  const RemoteResult r = client.submit(small_fir(21));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.outputs, local_outputs(small_fir(21)));
}

// Pre-v5 clients are refused batch frames with kBadRequest + close —
// the same gate the v3/v4 message families use.
TEST(NetShard, PreV5ClientsAreRefusedBatchMessages) {
  TestServer ts;

  SubmitJobBatchMsg msg;
  msg.tag = 3;
  msg.jobs.push_back(small_fir(1));
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kSubmitJobBatch,
               encode_submit_job_batch(msg, 4), 4);
  RawConn raw(ts.server.port());
  raw.send_all(wire);

  Frame reply;
  ASSERT_TRUE(raw.recv_frame(reply));
  ASSERT_EQ(reply.type, MsgType::kError);
  const ErrorMsg err = decode_error(reply.payload, reply.version);
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  EXPECT_NE(err.message.find("protocol v5"), std::string::npos);
  EXPECT_TRUE(raw.recv_eof());
}

// ---------------------------------------------------------------------------
// Queue-depth admission

// With a 2-deep queue and one worker pinned by fat jobs, an 8-deep
// burst must see the full watermark ladder: immediate accepts,
// deferrals, and forced sheds carrying the configured retry hint.
// Every outcome lands in exactly one of accepted/shed.
TEST(NetShard, WatermarkAdmissionDefersAndShedsWithHint) {
  ServerConfig scfg;
  scfg.runtime.workers = 1;
  scfg.runtime.queue_capacity = 2;
  scfg.admission_max_delay = std::chrono::milliseconds(1);
  scfg.retry_after_hint_ms = 7;
  TestServer ts(scfg);

  constexpr std::uint32_t kBurst = 8;
  std::vector<std::uint8_t> wire;
  JobRequest req = fat_fir();
  for (std::uint32_t tag = 1; tag <= kBurst; ++tag) {
    req.tag = tag;
    append_frame(wire, MsgType::kSubmitJob, encode_job_request(req));
  }
  RawConn raw(ts.server.port());
  raw.send_all(wire);

  std::size_t results = 0;
  std::size_t busy = 0;
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    Frame frame;
    ASSERT_TRUE(raw.recv_frame(frame)) << "reply " << i << " missing";
    if (frame.type == MsgType::kJobResult) {
      ++results;
      continue;
    }
    ASSERT_EQ(frame.type, MsgType::kError);
    const ErrorMsg err = decode_error(frame.payload, frame.version);
    EXPECT_EQ(err.code, ErrorCode::kBusy);
    EXPECT_EQ(err.retry_after_ms, 7u);
    ++busy;
  }
  EXPECT_EQ(results + busy, kBurst);
  EXPECT_GE(busy, 1u) << "2-deep queue absorbed an 8-deep fat burst";
  EXPECT_GE(results, 2u);

  ts.stop();
  const auto m = ts.server.metrics();
  EXPECT_EQ(counter(m, "net.admission.accepted"), results);
  EXPECT_EQ(counter(m, "net.admission.shed"), busy);
  EXPECT_EQ(counter(m, "net.rejects.busy"), busy);
  EXPECT_GE(counter(m, "net.admission.delayed"), 1u);
}

// Explicit watermark overrides pin the band; low == high == 1 over a
// 4-deep queue reproduces the legacy full-queue shed byte-for-byte
// (kBusy, same message text) for v1 clients — no hint tail.
TEST(NetShard, ExplicitWatermarksShedLegacyBytesForV1Clients) {
  ServerConfig scfg;
  scfg.runtime.workers = 1;
  scfg.runtime.queue_capacity = 4;
  scfg.admission_low = 1;
  scfg.admission_high = 1;
  TestServer ts(scfg);

  constexpr std::uint32_t kBurst = 6;
  std::vector<std::uint8_t> wire;
  JobRequest req = fat_fir();
  for (std::uint32_t tag = 1; tag <= kBurst; ++tag) {
    req.tag = tag;
    append_frame(wire, MsgType::kSubmitJob, encode_job_request(req, 1),
                 1);
  }
  RawConn raw(ts.server.port());
  raw.send_all(wire);

  std::size_t busy = 0;
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    Frame frame;
    ASSERT_TRUE(raw.recv_frame(frame)) << "reply " << i << " missing";
    if (frame.type != MsgType::kError) continue;
    EXPECT_EQ(frame.version, 1u);
    const ErrorMsg err = decode_error(frame.payload, frame.version);
    EXPECT_EQ(err.code, ErrorCode::kBusy);
    EXPECT_NE(err.message.find("resubmit later"), std::string::npos);
    EXPECT_EQ(err.retry_after_ms, 0u);  // v1 payload has no tail
    ++busy;
  }
  EXPECT_GE(busy, 1u);
}

// ---------------------------------------------------------------------------
// Client pipelining API

TEST(NetShard, SubmitPipelinedMatchesSequentialBitExact) {
  ServerConfig scfg;
  scfg.runtime.workers = 2;
  scfg.shards = 2;
  TestServer ts(scfg);

  std::vector<JobRequest> reqs;
  std::vector<std::vector<Word>> expected;
  for (std::uint32_t i = 0; i < 9; ++i) {
    reqs.push_back(small_fir(0x900 + i));
    expected.push_back(local_outputs(reqs.back()));
  }

  Client client(client_config(ts.server.port()));
  const auto results = client.submit_pipelined(reqs, 4);
  ASSERT_EQ(results.size(), reqs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok)
        << "job " << i << ": "
        << (results[i].busy ? "busy" : results[i].error);
    EXPECT_EQ(results[i].outputs, expected[i]) << "job " << i;
  }
}

}  // namespace
}  // namespace sring::net
