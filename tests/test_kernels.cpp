// End-to-end kernel tests: every ring kernel is checked bit-exactly
// against its golden DSP model.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/fir.hpp"
#include "dsp/iir.hpp"
#include "dsp/sad.hpp"
#include "dsp/wavelet.hpp"
#include "kernels/dwt_kernel.hpp"
#include "kernels/fifo_kernel.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/iir_kernel.hpp"
#include "kernels/mac_kernel.hpp"
#include "kernels/motion_estimation.hpp"

namespace sring::kernels {
namespace {

RingGeometry ring16() { return {8, 2, 16}; }

std::vector<Word> random_signal(std::size_t n, std::uint64_t seed,
                                std::int32_t lo = -200,
                                std::int32_t hi = 200) {
  Rng rng(seed);
  std::vector<Word> x(n);
  for (auto& v : x) v = rng.next_word_in(lo, hi);
  return x;
}

// ---- MAC -------------------------------------------------------------------

class MacSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MacSweep, MatchesRunningMacReference) {
  const auto [n, seed] = GetParam();
  const auto a = random_signal(static_cast<std::size_t>(n), seed);
  const auto b = random_signal(static_cast<std::size_t>(n), seed + 100);
  const auto result = run_running_mac(ring16(), a, b);
  EXPECT_EQ(result.partial_sums, dsp::running_mac_reference(a, b));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MacSweep,
                         ::testing::Combine(::testing::Values(1, 7, 64,
                                                              257),
                                            ::testing::Values(1, 2)));

TEST(MacKernel, OneMacPerCycleSteadyState) {
  const auto a = random_signal(256, 5);
  const auto b = random_signal(256, 6);
  const auto result = run_running_mac(ring16(), a, b);
  // Boot is 2 controller cycles; after that one MAC per cycle.
  EXPECT_LE(result.stats.cycles, 256u + 4u);
  EXPECT_EQ(result.stats.arith_ops, 2u * 256u);
}

// ---- spatial FIR -----------------------------------------------------------

class SpatialFirSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SpatialFirSweep, MatchesFirReference) {
  const auto [taps, n, seed] = GetParam();
  const auto x = random_signal(static_cast<std::size_t>(n), seed, -64, 64);
  const auto coeffs = random_signal(static_cast<std::size_t>(taps),
                                    seed + 7, -8, 8);
  const auto result = run_spatial_fir(ring16(), x, coeffs);
  EXPECT_EQ(result.outputs, dsp::fir_reference(x, coeffs))
      << "taps=" << taps << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpatialFirSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 7),
                       ::testing::Values(16, 100), ::testing::Values(1, 9)));

TEST(SpatialFir, OneSamplePerCycle) {
  const auto x = random_signal(512, 3);
  const std::vector<Word> coeffs = {1, 2, 3, 4};
  const auto result = run_spatial_fir(ring16(), x, coeffs);
  // 512 samples + 4 flush + 2 boot cycles, at 1 sample/cycle.
  EXPECT_LE(result.cycles_per_sample, 1.05);
}

// ---- serial (resource-shared) FIR ------------------------------------------

class SerialFirSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SerialFirSweep, PagedMatchesFirReference) {
  const auto [taps, seed] = GetParam();
  const auto x = random_signal(40, seed, -64, 64);
  const auto coeffs = random_signal(static_cast<std::size_t>(taps),
                                    seed + 3, -8, 8);
  const auto result = run_paged_serial_fir(ring16(), x, coeffs);
  EXPECT_EQ(result.outputs, dsp::fir_reference(x, coeffs))
      << "taps=" << taps;
  // Period is taps+4 cycles per sample (plus boot).
  EXPECT_LT(result.cycles_per_sample, taps + 5.0);
}

TEST_P(SerialFirSweep, WordwiseMatchesFirReference) {
  const auto [taps, seed] = GetParam();
  const auto x = random_signal(24, seed, -64, 64);
  const auto coeffs = random_signal(static_cast<std::size_t>(taps),
                                    seed + 3, -8, 8);
  const auto result = run_wordwise_serial_fir(ring16(), x, coeffs);
  EXPECT_EQ(result.outputs, dsp::fir_reference(x, coeffs))
      << "taps=" << taps;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SerialFirSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(2, 11)));

TEST(SerialFir, PageMechanismBeatsWordwiseReconfiguration) {
  // The ablation behind DESIGN.md experiment A1: same filter, same
  // dataflow, page-swapped vs word-at-a-time reconfiguration.
  const auto x = random_signal(64, 21, -64, 64);
  const std::vector<Word> coeffs = {3, to_word(-1), 2, 5};
  const auto paged = run_paged_serial_fir(ring16(), x, coeffs);
  const auto wordwise = run_wordwise_serial_fir(ring16(), x, coeffs);
  EXPECT_EQ(paged.outputs, wordwise.outputs);
  EXPECT_LT(paged.cycles_per_sample * 2, wordwise.cycles_per_sample)
      << "page swaps must be at least 2x faster than word-wise writes";
}

// ---- IIR -------------------------------------------------------------------

class IirSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IirSweep, MatchesIirReference) {
  const auto [aval, seed] = GetParam();
  const auto x = random_signal(64, seed, -100, 100);
  const Word a = to_word(aval);
  const auto result = run_iir1(ring16(), x, a);
  EXPECT_EQ(result.outputs, dsp::iir1_reference(x, a)) << "a=" << aval;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IirSweep,
                         ::testing::Combine(::testing::Values(0, 1, -1, 3,
                                                              -7),
                                            ::testing::Values(4, 5)));

class Iir2Sweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Iir2Sweep, MatchesBiquadReference) {
  const auto [b0, a1, a2, seed] = GetParam();
  const auto x = random_signal(48, seed, -50, 50);
  const auto result =
      run_iir2(ring16(), x, to_word(b0), to_word(a1), to_word(a2));
  dsp::BiquadCoeffs c;
  c.b0 = to_word(b0);
  c.a1 = to_word(a1);
  c.a2 = to_word(a2);
  EXPECT_EQ(result.outputs, dsp::biquad_reference(x, c))
      << "b0=" << b0 << " a1=" << a1 << " a2=" << a2;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Iir2Sweep,
    ::testing::Combine(::testing::Values(1, 2), ::testing::Values(0, 1, -2),
                       ::testing::Values(0, 1, -1),
                       ::testing::Values(14, 15)));

TEST(BiquadCascade, MatchesFullBiquadReference) {
  Rng rng(321);
  for (int trial = 0; trial < 4; ++trial) {
    const auto x = random_signal(48, 500 + trial, -40, 40);
    BiquadKernelCoeffs kc;
    kc.b0 = rng.next_word_in(-4, 4);
    kc.b1 = rng.next_word_in(-4, 4);
    kc.b2 = rng.next_word_in(-4, 4);
    kc.a1 = rng.next_word_in(-2, 2);
    kc.a2 = rng.next_word_in(-2, 2);
    const auto result = run_biquad_cascade(ring16(), x, kc);
    dsp::BiquadCoeffs c;
    c.b0 = kc.b0;
    c.b1 = kc.b1;
    c.b2 = kc.b2;
    c.a1 = kc.a1;
    c.a2 = kc.a2;
    EXPECT_EQ(result.outputs, dsp::biquad_reference(x, c))
        << "trial " << trial;
  }
}

TEST(Iir2, TwoCyclesPerSample) {
  const auto x = random_signal(128, 77);
  const auto result = run_iir2(ring16(), x, 1, to_word(1), to_word(-1));
  EXPECT_GE(result.cycles_per_sample, 2.0);
  EXPECT_LE(result.cycles_per_sample, 2.2);
}

TEST(Iir1, TwoCyclesPerSample) {
  const auto x = random_signal(128, 8);
  const auto result = run_iir1(ring16(), x, to_word(2));
  EXPECT_GE(result.cycles_per_sample, 2.0);
  EXPECT_LE(result.cycles_per_sample, 2.1);
}

// ---- FIFO emulation --------------------------------------------------------

class FifoSweep : public ::testing::TestWithParam<int> {};

TEST_P(FifoSweep, DelaysByDepthPlusTwo) {
  const std::size_t depth = static_cast<std::size_t>(GetParam());
  const auto x = random_signal(32, 13);
  const auto result = run_fifo(ring16(), x, depth);
  ASSERT_EQ(result.outputs.size(), x.size() + depth + 2);
  for (std::size_t i = 0; i < depth + 2; ++i) {
    EXPECT_EQ(result.outputs[i], 0u);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(result.outputs[i + depth + 2], x[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, FifoSweep,
                         ::testing::Values(0, 1, 3, 7, 15));

class LifoSweep : public ::testing::TestWithParam<int> {};

TEST_P(LifoSweep, ReversesEveryBlock) {
  const std::size_t block = static_cast<std::size_t>(GetParam());
  const auto x = random_signal(block * 6, 17);
  const auto result = run_lifo(ring16(), x, block);
  ASSERT_EQ(result.outputs.size(), x.size());
  for (std::size_t b = 0; b < 6; ++b) {
    for (std::size_t i = 0; i < block; ++i) {
      EXPECT_EQ(result.outputs[b * block + i],
                x[b * block + (block - 1 - i)])
          << "block " << b << " element " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, LifoSweep, ::testing::Values(2, 3, 5, 8));

TEST(Lifo, RejectsBadShapes) {
  std::vector<Word> x(8, 1);
  EXPECT_THROW(run_lifo(ring16(), x, 1), SimError);
  EXPECT_THROW(run_lifo(ring16(), x, 9), SimError);
  std::vector<Word> ragged(7, 1);
  EXPECT_THROW(run_lifo(ring16(), ragged, 4), SimError);
}

// ---- motion estimation -----------------------------------------------------

TEST(MotionEstimation, SadsMatchGoldenModel) {
  const Image ref = Image::synthetic(48, 48, 31);
  const Image cand = Image::shifted(ref, 2, -1, 7, 5);
  const auto result = run_motion_estimation(ring16(), ref, 16, 16, cand,
                                            /*range=*/2);
  const auto golden = dsp::all_candidate_sads(ref, 16, 16, cand, 2);
  ASSERT_EQ(result.sads.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(result.sads[i], golden[i]) << "candidate " << i;
  }
}

TEST(MotionEstimation, FullRangeRecoversPlantedMotion) {
  const Image ref = Image::synthetic(64, 64, 55);
  const Image cand = Image::shifted(ref, -4, 6, 0, 0);
  const auto result =
      run_motion_estimation(ring16(), ref, 24, 24, cand, /*range=*/8);
  EXPECT_EQ(result.sads.size(), 289u);
  const auto golden = dsp::full_search(ref, 24, 24, cand, 8);
  EXPECT_EQ(result.best, golden);
  EXPECT_EQ(result.best.dx, -4);
  EXPECT_EQ(result.best.dy, 6);
}

TEST(MotionEstimation, ScalesAcrossRingSizes) {
  // One SAD unit per layer: Ring-64 must agree with Ring-16 and finish
  // in roughly a quarter of the cycles (32 vs 8 units).
  const Image ref = Image::synthetic(48, 48, 8);
  const Image cand = Image::shifted(ref, -2, 3, 1, 4);
  const auto r16 = run_motion_estimation({8, 2, 16}, ref, 20, 20, cand, 8);
  const auto r64 = run_motion_estimation({32, 2, 16}, ref, 20, 20, cand, 8);
  EXPECT_EQ(r16.sads, r64.sads);
  EXPECT_EQ(r16.best, r64.best);
  const double speedup = static_cast<double>(r16.cycles) /
                         static_cast<double>(r64.cycles);
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 4.5);
}

TEST(MotionEstimation, CycleBudgetMatchesSchedule) {
  // 289 candidates on 8 units = 37 batches of 64+3 ring cycles plus 2
  // loop cycles each, plus boot and drain.
  const Image ref = Image::synthetic(48, 48, 3);
  const Image cand = Image::shifted(ref, 1, 1, 2, 3);
  const auto result =
      run_motion_estimation(ring16(), ref, 20, 20, cand, /*range=*/8);
  EXPECT_GE(result.cycles, 37u * 67u);
  EXPECT_LE(result.cycles, 37u * 69u + 16u);
}

// ---- wavelet ----------------------------------------------------------------

class DwtSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DwtSweep, MatchesLiftingReference) {
  const auto [n, seed] = GetParam();
  const auto x = random_signal(static_cast<std::size_t>(n), seed, 0, 255);
  const auto result = run_dwt53(ring16(), x);
  const auto golden = dsp::dwt53_forward(x, dsp::Boundary::kZero);
  EXPECT_EQ(result.bands.high, golden.high) << "n=" << n;
  EXPECT_EQ(result.bands.low, golden.low) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DwtSweep,
                         ::testing::Combine(::testing::Values(2, 8, 64,
                                                              256),
                                            ::testing::Values(1, 2, 3)));

TEST(Dwt, OnePixelPerCycleThroughput) {
  const auto x = random_signal(1024, 9, 0, 255);
  const auto result = run_dwt53(ring16(), x);
  // 512 pairs + 8 flush pairs + 2 boot cycles over 1024 samples.
  EXPECT_LE(result.cycles_per_sample, 0.52);
}

TEST(Dwt, TwoDimensionalMatchesGoldenModel) {
  const Image img = Image::synthetic(16, 12, 23);
  const auto result = run_dwt53_2d(ring16(), img);
  const auto golden = dsp::dwt53_forward_2d(img, dsp::Boundary::kZero);
  EXPECT_EQ(result.bands.ll, golden.ll);
  EXPECT_EQ(result.bands.lh, golden.lh);
  EXPECT_EQ(result.bands.hl, golden.hl);
  EXPECT_EQ(result.bands.hh, golden.hh);
}

TEST(Dwt, PyramidMatchesGoldenModel) {
  const Image img = Image::synthetic(32, 16, 61);
  const auto ring = run_dwt53_pyramid(ring16(), img, 2);
  const auto golden = dsp::dwt53_pyramid(img, 2, dsp::Boundary::kZero);
  ASSERT_EQ(ring.levels.size(), golden.size());
  for (std::size_t l = 0; l < golden.size(); ++l) {
    EXPECT_EQ(ring.levels[l], golden[l]) << "level " << l;
  }
  EXPECT_GT(ring.total_cycles, 0u);
}

TEST(Dwt, RingOutputReconstructsPerfectly) {
  const auto x = random_signal(128, 44, 0, 255);
  const auto result = run_dwt53(ring16(), x);
  EXPECT_EQ(dsp::dwt53_inverse(result.bands, dsp::Boundary::kZero),
            std::vector<Word>(x.begin(), x.end()));
}

class IdwtSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IdwtSweep, InversePipelineMatchesGoldenInverse) {
  const auto [half, seed] = GetParam();
  dsp::Subbands bands;
  bands.low = random_signal(static_cast<std::size_t>(half), seed, -200,
                            200);
  bands.high = random_signal(static_cast<std::size_t>(half), seed + 9,
                             -100, 100);
  const auto result = run_idwt53(ring16(), bands);
  EXPECT_EQ(result.signal,
            dsp::dwt53_inverse(bands, dsp::Boundary::kZero))
      << "half=" << half;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IdwtSweep,
                         ::testing::Combine(::testing::Values(1, 4, 32,
                                                              128),
                                            ::testing::Values(1, 2)));

TEST(Idwt, RingForwardThenRingInverseIsIdentity) {
  const auto x = random_signal(96, 71, 0, 255);
  const auto fwd = run_dwt53(ring16(), x);
  const auto back = run_idwt53(ring16(), fwd.bands);
  EXPECT_EQ(back.signal, std::vector<Word>(x.begin(), x.end()));
}

TEST(Idwt, OnePixelPerCycleThroughput) {
  dsp::Subbands bands;
  bands.low = random_signal(512, 13, 0, 255);
  bands.high = random_signal(512, 14, -60, 60);
  const auto result = run_idwt53(ring16(), bands);
  EXPECT_LE(result.cycles_per_sample, 0.52);
}

}  // namespace
}  // namespace sring::kernels
