// The Ring's decoded cycle-plan cache: bit-exactness against the
// interpreter (steady-state kernels, hardware multiplexing, stalls),
// invalidation via the generation counters, stall semantics on the
// planned path, and the plan observability counters.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/ring.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/mac_kernel.hpp"
#include "obs/event.hpp"
#include "sim/system.hpp"

namespace sring {
namespace {

std::vector<Word> signal(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Word> x(n);
  for (auto& w : x) w = rng.next_word_in(-100, 100);
  return x;
}

/// Statistics with the plan counters blanked: everything here must be
/// identical between the planned and the interpreted execution.
SystemStats arch_only(SystemStats s) {
  s.plan_compiles = 0;
  s.plan_hits = 0;
  s.plan_invalidations = 0;
  s.plan_content_hits = 0;
  s.plan_evictions = 0;
  s.plan_seq_fusions = 0;
  s.plan_seq_hits = 0;
  return s;
}

/// Scoped SRING_NO_PLAN_CACHE for kernels that construct their System
/// internally.  Tests are single-threaded; setenv here is safe.
struct ScopedNoPlanEnv {
  ScopedNoPlanEnv() { setenv("SRING_NO_PLAN_CACHE", "1", 1); }
  ~ScopedNoPlanEnv() { unsetenv("SRING_NO_PLAN_CACHE"); }
};

DnodeInstr pass_out(DnodeSrc src) {
  DnodeInstr i;
  i.op = DnodeOp::kPass;
  i.src_a = src;
  i.out_en = true;
  return i;
}

TEST(CyclePlan, EnvVarDisablesCache) {
  {
    ScopedNoPlanEnv no_plan;
    Ring ring({2, 1, 4});
    EXPECT_FALSE(ring.plan_cache_enabled());
  }
  Ring ring({2, 1, 4});
  EXPECT_TRUE(ring.plan_cache_enabled());
}

TEST(CyclePlan, RunningMacBitExactAndServedFromPlan) {
  const RingGeometry g{4, 2, 8};
  const std::vector<Word> a = signal(1, 200);
  const std::vector<Word> b = signal(2, 200);
  const LoadableProgram program = kernels::make_running_mac_program(g);

  std::vector<Word> outs[2];
  SystemStats stats[2];
  std::uint64_t hits = 0;
  for (const bool planned : {false, true}) {
    System sys({g});
    sys.ring().set_plan_cache_enabled(planned);
    sys.load(program);
    std::vector<Word> interleaved;
    for (std::size_t i = 0; i < a.size(); ++i) {
      interleaved.push_back(a[i]);
      interleaved.push_back(b[i]);
    }
    sys.host().send(interleaved);
    sys.run_until_outputs(a.size(), 64 + 16 * a.size());
    outs[planned] = sys.host().take_received();
    stats[planned] = sys.stats();
    if (planned) hits = sys.ring().plan_hits();
  }
  EXPECT_EQ(outs[0], outs[1]);
  EXPECT_EQ(arch_only(stats[0]).to_string(), arch_only(stats[1]).to_string());
  EXPECT_EQ(stats[0].plan_hits, 0u);
  EXPECT_EQ(stats[1].plan_compiles, 1u)
      << "steady-state local-mode kernel compiles exactly once";
  EXPECT_GE(hits + 4, a.size()) << "the MAC loop must run from the plan";
}

TEST(CyclePlan, SpatialFirBitExactViaEnvironmentSwitch) {
  const RingGeometry g{6, 2, 16};
  const std::vector<Word> x = signal(3, 160);
  const std::vector<Word> coeffs{5, static_cast<Word>(-3), 2, 1};

  const kernels::FirResult planned = kernels::run_spatial_fir(g, x, coeffs);
  ScopedNoPlanEnv no_plan;
  const kernels::FirResult interp = kernels::run_spatial_fir(g, x, coeffs);

  EXPECT_EQ(planned.outputs, interp.outputs);
  EXPECT_EQ(arch_only(planned.stats).to_string(),
            arch_only(interp.stats).to_string());
  EXPECT_GT(planned.stats.plan_hits, 0u);
  EXPECT_EQ(interp.stats.plan_hits, 0u);
  EXPECT_EQ(interp.stats.plan_compiles, 0u);
}

TEST(CyclePlan, HardwareMultiplexingBitExactWithoutRecompileThrash) {
  // The paged and word-by-word serial FIRs rewrite configware every
  // cycle (or nearly so) — the plan cache must neither change results
  // nor recompile on every rewrite.
  const RingGeometry g{6, 2, 16};
  const std::vector<Word> x = signal(4, 48);
  const std::vector<Word> coeffs{2, static_cast<Word>(-1), 3};

  const kernels::FirResult paged = kernels::run_paged_serial_fir(g, x, coeffs);
  const kernels::FirResult wordwise =
      kernels::run_wordwise_serial_fir(g, x, coeffs);
  {
    ScopedNoPlanEnv no_plan;
    const kernels::FirResult paged_i =
        kernels::run_paged_serial_fir(g, x, coeffs);
    const kernels::FirResult wordwise_i =
        kernels::run_wordwise_serial_fir(g, x, coeffs);
    EXPECT_EQ(paged.outputs, paged_i.outputs);
    EXPECT_EQ(wordwise.outputs, wordwise_i.outputs);
    EXPECT_EQ(arch_only(paged.stats).to_string(),
              arch_only(paged_i.stats).to_string());
    EXPECT_EQ(arch_only(wordwise.stats).to_string(),
              arch_only(wordwise_i.stats).to_string());
  }
  // Config-in-flux cycles run the interpreter directly: recompiles are
  // bounded by the stable stretches, never one per rewritten cycle.
  EXPECT_LT(paged.stats.plan_compiles, paged.stats.cycles / 4);
  EXPECT_LT(wordwise.stats.plan_compiles, wordwise.stats.cycles / 4);
}

TEST(CyclePlan, LimitedLinkStallsBitExact) {
  // A starved host link makes the ring stall mid-run; the planned and
  // interpreted executions must agree on outputs AND on the exact
  // stall pattern, and the stalls must not corrupt the stream vs an
  // unstalled run.
  const RingGeometry g{6, 2, 16};
  const std::vector<Word> x = signal(5, 96);
  const std::vector<Word> coeffs{1, 4, static_cast<Word>(-2)};
  const LinkRate starved{1, 2};  // one word every two cycles

  const kernels::FirResult planned =
      kernels::run_spatial_fir(g, x, coeffs, starved);
  const kernels::FirResult smooth = kernels::run_spatial_fir(g, x, coeffs);
  ScopedNoPlanEnv no_plan;
  const kernels::FirResult interp =
      kernels::run_spatial_fir(g, x, coeffs, starved);

  ASSERT_GT(planned.stats.ring_stall_cycles, 0u) << "link must starve";
  EXPECT_EQ(planned.outputs, interp.outputs);
  EXPECT_EQ(arch_only(planned.stats).to_string(),
            arch_only(interp.stats).to_string());
  EXPECT_EQ(planned.outputs, smooth.outputs)
      << "stalled and unstalled runs must produce the same stream";
}

TEST(CyclePlan, CountersTrackCompileHitInvalidate) {
  ConfigMemory cfg({2, 1, 4});
  Ring ring({2, 1, 4});
  HostFifo in;
  std::vector<Word> out;
  cfg.write_dnode_instr(0, pass_out(DnodeSrc::kImm).encode());

  ring.step(cfg, 0, in, out);  // first sight: interpreter
  EXPECT_EQ(ring.plan_compiles(), 0u);
  ring.step(cfg, 0, in, out);  // stable: compile + run planned
  EXPECT_EQ(ring.plan_compiles(), 1u);
  EXPECT_EQ(ring.plan_hits(), 0u);
  ring.step(cfg, 0, in, out);  // served by the cached plan
  ring.step(cfg, 0, in, out);
  EXPECT_EQ(ring.plan_hits(), 2u);
  EXPECT_EQ(ring.plan_invalidations(), 0u);

  // A configuration write invalidates; the write-cycle interprets and
  // the plan recompiles one stable step later.
  cfg.write_dnode_instr(0, pass_out(DnodeSrc::kZero).encode());
  ring.step(cfg, 0, in, out);
  EXPECT_EQ(ring.plan_invalidations(), 1u);
  EXPECT_EQ(ring.plan_compiles(), 1u);
  ring.step(cfg, 0, in, out);
  EXPECT_EQ(ring.plan_compiles(), 2u);

  // A local-control write also invalidates (WRLOC path).
  ring.step(cfg, 0, in, out);
  ring.write_local(0, 0, pass_out(DnodeSrc::kImm).encode());
  ring.step(cfg, 0, in, out);
  EXPECT_EQ(ring.plan_invalidations(), 2u);

  // reset() zeroes the counters and drops the plan.
  ring.reset();
  EXPECT_EQ(ring.plan_compiles(), 0u);
  EXPECT_EQ(ring.plan_hits(), 0u);
  EXPECT_EQ(ring.plan_invalidations(), 0u);
}

TEST(CyclePlan, PlannedModeEntryUnderStallCommitsOnce) {
  // A Dnode entering local mode while the ring stalls: the plan path
  // must fetch slot 0 without touching the counter until a cycle
  // actually advances.
  ConfigMemory cfg({1, 1, 4});
  Ring ring({1, 1, 4});
  HostFifo in;
  std::vector<Word> out;

  DnodeInstr eat = pass_out(DnodeSrc::kHost);  // slot 0: pops one word
  DnodeInstr emit = pass_out(DnodeSrc::kImm);  // slot 1: no host data
  emit.imm = 20;
  ring.write_local(0, 0, eat.encode());
  ring.write_local(0, 1, emit.encode());
  ring.write_local(0, LocalControl::kLimitSlot, 1);
  cfg.write_dnode_mode(0, DnodeMode::kLocal);

  EXPECT_TRUE(ring.step(cfg, 0, in, out).stalled);  // interpreter
  EXPECT_TRUE(ring.step(cfg, 0, in, out).stalled);  // compiles, planned
  EXPECT_TRUE(ring.step(cfg, 0, in, out).stalled);  // plan hit
  EXPECT_EQ(ring.plan_compiles(), 1u);
  EXPECT_EQ(ring.dnode(0, 0).local().counter(), 0u)
      << "stalled entry cycles must not advance the local program";

  in.push_back(7);
  EXPECT_FALSE(ring.step(cfg, 0, in, out).stalled);
  EXPECT_EQ(ring.dnode(0, 0).out(), 7u) << "slot 0 runs on the retry";
  EXPECT_EQ(ring.dnode(0, 0).local().counter(), 1u);
  EXPECT_FALSE(ring.step(cfg, 0, in, out).stalled);  // slot 1, no pop
  EXPECT_EQ(ring.dnode(0, 0).out(), 20u);
}

TEST(CyclePlan, CompileRejectsWhatTheInterpreterRejects) {
  // An out-of-geometry feedback route in local slot 1 (limit 1): both
  // paths must throw from step() on the cycle that reaches it.
  for (const bool planned : {false, true}) {
    ConfigMemory cfg({2, 1, 4});
    Ring ring({2, 1, 4});
    ring.set_plan_cache_enabled(planned);
    HostFifo in;
    std::vector<Word> out;

    SwitchRoute bad;
    bad.fifo1 = {7, 0, 0};  // pipe 7 does not exist in 2 layers
    cfg.write_switch_route(0, 0, bad.encode());
    // Slot 0 stays NOP (routes unchecked for NOP on both paths);
    // slot 1 is the first instruction that samples the bad route.
    ring.write_local(0, 1, pass_out(DnodeSrc::kFifo1).encode());
    ring.write_local(0, LocalControl::kLimitSlot, 1);
    cfg.write_dnode_mode(0, DnodeMode::kLocal);

    EXPECT_NO_THROW(ring.step(cfg, 0, in, out));  // slot 0 is a NOP
    // Interpreter: slot 1 executes and trips the range check.  Plan:
    // the compile on this same step validates the whole program.
    EXPECT_THROW(ring.step(cfg, 0, in, out), SimError);
  }
}

// ---------------------------------------------------------------------
// Superstep engine: the fused run must be observationally identical to
// per-cycle execution — outputs, full SystemStats (including the plan
// counters), and every metric except ring.superstep.* — across every
// boundary that forces it back to single-step.

/// Metrics snapshot minus the ring.superstep.* counters, the only
/// instruments the superstep engine is allowed to move.
std::string metrics_no_superstep(const obs::Registry& reg) {
  obs::JsonValue out = obs::JsonValue::object();
  for (const auto& [name, counter] : reg.counters()) {
    if (name.rfind("ring.superstep.", 0) == 0) continue;
    out.set(name, counter.value());
  }
  for (const auto& [name, hist] : reg.histograms()) {
    out.set(name, hist.to_json());
  }
  return out.dump();
}

struct SuperRun {
  std::vector<Word> outputs;
  std::string stats;    ///< full SystemStats, plan counters included
  std::string metrics;  ///< minus ring.superstep.*
  std::uint64_t cycles = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t ss_cycles = 0;
};

/// Run `drive` on a fresh System with the superstep engine on or off
/// and capture everything the engine must not change.
template <typename DriveFn>
SuperRun drive_system(const RingGeometry& g, bool superstep,
                      DriveFn&& drive) {
  System sys({g});
  sys.set_superstep_enabled(superstep);
  drive(sys);
  SuperRun r;
  r.outputs = sys.host().take_received();
  r.stats = sys.stats().to_string();
  r.metrics = metrics_no_superstep(sys.metrics());
  r.cycles = sys.cycle();
  r.dispatches = sys.ring().superstep_dispatches();
  r.ss_cycles = sys.ring().superstep_cycles();
  return r;
}

void expect_transparent(const SuperRun& on, const SuperRun& off) {
  EXPECT_EQ(on.outputs, off.outputs);
  EXPECT_EQ(on.cycles, off.cycles);
  EXPECT_EQ(on.stats, off.stats);
  EXPECT_EQ(on.metrics, off.metrics);
  EXPECT_EQ(off.dispatches, 0u)
      << "the disabled engine must never dispatch";
}

TEST(Superstep, HostFifoExhaustionAndRefillBitExact) {
  const RingGeometry g{8, 2, 16};
  const std::vector<Word> coeffs{5, static_cast<Word>(-3), 2, 1};
  const std::vector<Word> x = signal(21, 120);
  const LoadableProgram program =
      kernels::make_spatial_fir_program(g, coeffs);

  const auto drive = [&](System& sys) {
    sys.load(program);
    // First half, then run long enough to drain the FIFO and sit in
    // ring stalls; refill and finish.  A superstep must break exactly
    // at the exhaustion point and resume after the refill.
    std::vector<Word> first(x.begin(), x.begin() + 60);
    sys.host().send(first);
    sys.run_cycles(100);
    std::vector<Word> rest(x.begin() + 60, x.end());
    rest.insert(rest.end(), coeffs.size(), 0);  // flush the pipeline
    sys.host().send(rest);
    sys.run_until_outputs(x.size() + coeffs.size(), 4096);
  };

  const SuperRun on = drive_system(g, true, drive);
  const SuperRun off = drive_system(g, false, drive);
  expect_transparent(on, off);
  EXPECT_GT(on.dispatches, 0u);
  EXPECT_GT(on.ss_cycles, 60u) << "the steady phases must run fused";
}

TEST(Superstep, BusDriveBreaksDispatchBitExact) {
  // Dnode 0.0 drives the bus every executed cycle; 1.0 echoes the bus
  // to the host.  Every drive must end the fused dispatch so the value
  // lands on the System bus before the next cycle reads it.
  const RingGeometry g{2, 1, 4};
  const LoadableProgram program = assemble(R"(
.ring 2 1 4
.controller
    page boot
    halt
.page boot
    dnode 0.0 { pass none, host bus host }
    dnode 1.0 { pass none, bus host }
)");

  const auto drive = [&](System& sys) {
    sys.load(program);
    sys.host().send(signal(22, 48));
    sys.run_cycles(64);  // trailing cycles stall on the drained FIFO
  };

  const SuperRun on = drive_system(g, true, drive);
  const SuperRun off = drive_system(g, false, drive);
  expect_transparent(on, off);
  EXPECT_GT(on.dispatches, 0u);
}

TEST(Superstep, ControllerWaitAndPageSwapBitExact) {
  // Local two-slot program streams through a long controller WAIT
  // (supersteps must cap at the wake-up), then a page swap flips the
  // Dnode to global mode (plan invalidation mid-run).
  const RingGeometry g{2, 1, 4};
  const LoadableProgram program = assemble(R"(
.ring 2 1 4
.controller
    page boot
    wait 37
    page coda
    halt
.page boot
    dnode 0.0 local
.local 0.0
{
    pass none, host host
    pass none, imm(5) host
}
.page coda
    dnode 0.0 { pass none, imm(9) host }
)");

  const auto drive = [&](System& sys) {
    sys.load(program);
    sys.host().send(signal(23, 40));
    sys.run_until_halt(400, 6);
  };

  const SuperRun on = drive_system(g, true, drive);
  const SuperRun off = drive_system(g, false, drive);
  expect_transparent(on, off);
  EXPECT_GT(on.dispatches, 0u) << "the WAIT window must run fused";
}

TEST(Superstep, TraceSinkForcesPerCycleBitExact) {
  // A sink attached mid-run must stop fused dispatches immediately —
  // every subsequent cycle needs its events published.
  struct NullSink : obs::EventSink {
    void event(const obs::Event&) override { ++events; }
    std::uint64_t events = 0;
  };

  const RingGeometry g{8, 2, 16};
  const std::vector<Word> coeffs{2, static_cast<Word>(-1), 3};
  const std::vector<Word> x = signal(24, 80);
  const LoadableProgram program =
      kernels::make_spatial_fir_program(g, coeffs);

  NullSink sink;
  std::uint64_t dispatches_at_attach = 0;
  const auto drive = [&](System& sys) {
    sys.load(program);
    std::vector<Word> feed = x;
    feed.insert(feed.end(), coeffs.size(), 0);
    sys.host().send(feed);
    sys.run_cycles(40);
    if (sys.superstep_enabled()) {
      dispatches_at_attach = sys.ring().superstep_dispatches();
    }
    sys.set_trace(&sink);
    sys.run_until_outputs(x.size() + coeffs.size(), 4096);
    sys.set_trace(nullptr);
  };

  const SuperRun on = drive_system(g, true, drive);
  EXPECT_GT(on.dispatches, 0u);
  EXPECT_EQ(on.dispatches, dispatches_at_attach)
      << "no fused dispatch may run while a sink is attached";

  const SuperRun off = drive_system(g, false, drive);
  expect_transparent(on, off);
}

TEST(Superstep, ResetForRerunRepeatsBitExact) {
  const RingGeometry g{4, 2, 8};
  const std::vector<Word> a = signal(25, 150);
  const std::vector<Word> b = signal(26, 150);
  const LoadableProgram program = kernels::make_running_mac_program(g);
  std::vector<Word> interleaved;
  for (std::size_t i = 0; i < a.size(); ++i) {
    interleaved.push_back(a[i]);
    interleaved.push_back(b[i]);
  }

  for (const bool superstep : {true, false}) {
    System sys({g});
    sys.set_superstep_enabled(superstep);
    std::vector<Word> first, second;
    sys.load(program);
    sys.host().send(interleaved);
    sys.run_until_outputs(a.size(), 64 + 16 * a.size());
    first = sys.host().take_received();
    sys.reset_for_rerun(program);
    sys.host().send(interleaved);
    sys.run_until_outputs(a.size(), 64 + 16 * a.size());
    second = sys.host().take_received();
    EXPECT_EQ(first, second)
        << "rerun diverged with superstep " << (superstep ? "on" : "off");
  }
}

TEST(Superstep, CountersAndEnvironmentKnob) {
  {
    struct ScopedNoSuperstepEnv {
      ScopedNoSuperstepEnv() { setenv("SRING_NO_SUPERSTEP", "1", 1); }
      ~ScopedNoSuperstepEnv() { unsetenv("SRING_NO_SUPERSTEP"); }
    } env;
    System sys({RingGeometry{2, 1, 4}});
    EXPECT_FALSE(sys.superstep_enabled());
  }
  System sys({RingGeometry{4, 2, 8}});
  EXPECT_TRUE(sys.superstep_enabled());

  const std::vector<Word> a = signal(27, 100);
  const LoadableProgram program = kernels::make_running_mac_program({4, 2, 8});
  sys.load(program);
  std::vector<Word> interleaved;
  for (const Word w : a) {
    interleaved.push_back(w);
    interleaved.push_back(1);
  }
  sys.host().send(interleaved);
  sys.run_until_outputs(a.size(), 64 + 16 * a.size());

  const obs::Registry reg = sys.metrics();
  const obs::Counter* d = reg.find_counter("ring.superstep.dispatches");
  const obs::Counter* c = reg.find_counter("ring.superstep.cycles");
  ASSERT_NE(d, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_GT(d->value(), 0u);
  EXPECT_GT(c->value(), a.size() / 2)
      << "a steady local-mode run must spend most cycles fused";
  EXPECT_EQ(sys.ring().superstep_cycles(), c->value());
}

TEST(CyclePlan, FbReadDepthCountsSizedByGeometry) {
  // The per-depth feedback histogram is sized by fb_depth, not a
  // hard-coded 16-deep stride.
  ConfigMemory cfg({2, 1, 8});
  Ring ring({2, 1, 8});
  HostFifo in;
  std::vector<Word> out;
  ASSERT_EQ(ring.fb_read_depth_counts().size(), 2u * 8u);

  SwitchRoute r;
  r.fifo1 = {1, 0, 5};
  cfg.write_switch_route(0, 0, r.encode());
  cfg.write_dnode_instr(0, pass_out(DnodeSrc::kFifo1).encode());
  for (int c = 0; c < 6; ++c) ring.step(cfg, 0, in, out);

  EXPECT_EQ(ring.fb_read_depth_counts()[1 * 8 + 5], 6u);
  EXPECT_EQ(ring.fb_reads_per_pipe()[1], 6u);
  EXPECT_GT(ring.plan_hits(), 0u) << "reads must also count on the plan path";
}

}  // namespace
}  // namespace sring
