// Behavioral tests for the Ring operating layer: systolic movement,
// ring closure, feedback pipelines, host I/O, stalls, bus, local mode.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "core/ring.hpp"

namespace sring {
namespace {

DnodeInstr pass_out(DnodeSrc src) {
  DnodeInstr i;
  i.op = DnodeOp::kPass;
  i.src_a = src;
  i.out_en = true;
  return i;
}

SwitchRoute in1_prev(std::uint8_t lane) {
  SwitchRoute r;
  r.in1 = PortRoute::prev(lane);
  return r;
}

struct Harness {
  explicit Harness(const RingGeometry& g) : cfg(g), ring(g) {}

  Ring::CycleResult step(Word bus = 0) {
    return ring.step(cfg, bus, in, out);
  }

  ConfigMemory cfg;
  Ring ring;
  HostFifo in;
  std::vector<Word> out;
};

TEST(Ring, SystolicForwardMovement) {
  // 4 layers x 1 lane: layer 0 reads host, layers 1..3 forward.
  Harness h({4, 1, 4});
  SwitchRoute host_route;
  host_route.in1 = PortRoute::host();
  h.cfg.write_switch_route(0, 0, host_route.encode());
  h.cfg.write_dnode_instr(0, pass_out(DnodeSrc::kIn1).encode());
  for (std::size_t l = 1; l < 4; ++l) {
    h.cfg.write_switch_route(l, 0, in1_prev(0).encode());
    h.cfg.write_dnode_instr(l, pass_out(DnodeSrc::kIn1).encode());
  }
  h.in.assign({101, 102, 103, 104, 105, 106, 107, 108});

  // After k+1 cycles the first word reaches layer k's output register.
  h.step();
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 101u);
  h.step();
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 102u);
  EXPECT_EQ(h.ring.dnode(1, 0).out(), 101u);
  h.step();
  h.step();
  EXPECT_EQ(h.ring.dnode(3, 0).out(), 101u);
  EXPECT_EQ(h.ring.dnode(2, 0).out(), 102u);
}

TEST(Ring, ClosesIntoARing) {
  // Layer 0 forwards from layer 3 (the ring wrap), no host involved.
  Harness h({4, 1, 4});
  for (std::size_t l = 0; l < 4; ++l) {
    h.cfg.write_switch_route(l, 0, in1_prev(0).encode());
    h.cfg.write_dnode_instr(l, pass_out(DnodeSrc::kIn1).encode());
  }
  // Seed layer 3's output register directly.
  DnodeInstr seed;
  seed.op = DnodeOp::kPass;
  seed.src_a = DnodeSrc::kImm;
  seed.imm = 77;
  seed.out_en = true;
  h.cfg.write_dnode_instr(3, seed.encode());
  h.step();
  EXPECT_EQ(h.ring.dnode(3, 0).out(), 77u);
  // Restore forwarding; the token must travel 3 -> 0 -> 1 -> 2 -> 3.
  h.cfg.write_dnode_instr(3, pass_out(DnodeSrc::kIn1).encode());
  h.step();
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 77u) << "wrap from last to first";
  h.step();
  EXPECT_EQ(h.ring.dnode(1, 0).out(), 77u);
}

TEST(Ring, FeedbackPipelineDelaysByDepthPlusOne) {
  // Lane 0 streams the host; a second lane reads the same stream via
  // the feedback pipeline at increasing depth.
  Harness h({2, 2, 8});
  SwitchRoute l0;
  l0.in1 = PortRoute::host();
  h.cfg.write_switch_route(0, 0, l0.encode());
  h.cfg.write_dnode_instr(0, pass_out(DnodeSrc::kIn1).encode());

  // Layer 1 lane 0: direct PREV route.  Layer 1 lane 1: feedback read
  // of pipe 1 (which latches layer 0) at depth 2.
  h.cfg.write_switch_route(1, 0, in1_prev(0).encode());
  h.cfg.write_dnode_instr(2, pass_out(DnodeSrc::kIn1).encode());
  SwitchRoute fbr;
  fbr.in1 = PortRoute::feedback({1, 0, 2});
  h.cfg.write_switch_route(1, 1, fbr.encode());
  h.cfg.write_dnode_instr(3, pass_out(DnodeSrc::kIn1).encode());

  for (Word v = 1; v <= 10; ++v) h.in.push_back(v);
  for (int c = 0; c < 9; ++c) h.step();
  // Direct path: layer1 lane0 lags layer0 by 1 cycle; feedback at
  // depth 2 lags the direct path by 3 more (1 latch + 2 depth).
  const Word direct = h.ring.dnode(1, 0).out();
  const Word fb = h.ring.dnode(1, 1).out();
  EXPECT_EQ(as_signed(direct) - as_signed(fb), 3);
}

TEST(Ring, HostPopOrderIsDeterministic) {
  // Two Dnodes in layer 0 both read host on in1: pops must go lane 0
  // first, then lane 1.
  Harness h({1, 2, 4});
  SwitchRoute hr;
  hr.in1 = PortRoute::host();
  h.cfg.write_switch_route(0, 0, hr.encode());
  h.cfg.write_switch_route(0, 1, hr.encode());
  h.cfg.write_dnode_instr(0, pass_out(DnodeSrc::kIn1).encode());
  h.cfg.write_dnode_instr(1, pass_out(DnodeSrc::kIn1).encode());
  h.in.assign({5, 6});
  const auto res = h.step();
  EXPECT_EQ(res.host_words_in, 2u);
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 5u);
  EXPECT_EQ(h.ring.dnode(0, 1).out(), 6u);
}

TEST(Ring, SamePortReadTwicePopsOnce) {
  // in1 used as both operands: a single port, a single pop.
  Harness h({1, 1, 4});
  SwitchRoute hr;
  hr.in1 = PortRoute::host();
  h.cfg.write_switch_route(0, 0, hr.encode());
  DnodeInstr add;
  add.op = DnodeOp::kAdd;
  add.src_a = DnodeSrc::kIn1;
  add.src_b = DnodeSrc::kIn1;
  add.out_en = true;
  h.cfg.write_dnode_instr(0, add.encode());
  h.in.assign({21, 99});
  const auto res = h.step();
  EXPECT_EQ(res.host_words_in, 1u);
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 42u);
  EXPECT_EQ(h.in.size(), 1u);
}

TEST(Ring, StallsAtomicallyOnUnderflow) {
  // Two host ports needed, only one word available: full stall, the
  // word must NOT be consumed.
  Harness h({1, 2, 4});
  SwitchRoute hr;
  hr.in1 = PortRoute::host();
  h.cfg.write_switch_route(0, 0, hr.encode());
  h.cfg.write_switch_route(0, 1, hr.encode());
  h.cfg.write_dnode_instr(0, pass_out(DnodeSrc::kIn1).encode());
  h.cfg.write_dnode_instr(1, pass_out(DnodeSrc::kIn1).encode());
  h.in.assign({5});
  const auto res = h.step();
  EXPECT_TRUE(res.stalled);
  EXPECT_EQ(res.ops, 0u);
  EXPECT_EQ(h.in.size(), 1u);
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 0u);
  // Providing the second word un-stalls.
  h.in.push_back(6);
  EXPECT_FALSE(h.step().stalled);
}

TEST(Ring, NopDnodesNeedNoHostData) {
  Harness h({1, 1, 4});
  SwitchRoute hr;
  hr.in1 = PortRoute::host();
  h.cfg.write_switch_route(0, 0, hr.encode());
  // Instruction is NOP: the host route must not pop or stall.
  const auto res = h.step();
  EXPECT_FALSE(res.stalled);
  EXPECT_EQ(res.host_words_in, 0u);
}

TEST(Ring, HostEnPushesResults) {
  Harness h({1, 1, 4});
  DnodeInstr i;
  i.op = DnodeOp::kPass;
  i.src_a = DnodeSrc::kImm;
  i.imm = 123;
  i.host_en = true;
  h.cfg.write_dnode_instr(0, i.encode());
  h.step();
  h.step();
  ASSERT_EQ(h.out.size(), 2u);
  EXPECT_EQ(h.out[0], 123u);
}

TEST(Ring, SwitchHostOutTapsUpstreamLane) {
  Harness h({2, 1, 4});
  DnodeInstr i;
  i.op = DnodeOp::kPass;
  i.src_a = DnodeSrc::kImm;
  i.imm = 7;
  i.out_en = true;
  h.cfg.write_dnode_instr(0, i.encode());
  SwitchRoute tap;  // switch 1 taps layer 0's lane 0
  tap.host_out_en = true;
  tap.host_out_lane = 0;
  h.cfg.write_switch_route(1, 0, tap.encode());
  h.step();  // layer0 out becomes 7 at the edge; tap saw pre-edge 0
  h.step();
  ASSERT_GE(h.out.size(), 2u);
  EXPECT_EQ(h.out[0], 0u);
  EXPECT_EQ(h.out[1], 7u);
}

TEST(Ring, BusValueVisibleAndDnodeCanDriveIt) {
  Harness h({1, 1, 4});
  DnodeInstr i;
  i.op = DnodeOp::kAdd;
  i.src_a = DnodeSrc::kBus;
  i.src_b = DnodeSrc::kImm;
  i.imm = 1;
  i.out_en = true;
  i.bus_en = true;
  h.cfg.write_dnode_instr(0, i.encode());
  const auto res = h.step(to_word(41));
  EXPECT_EQ(h.ring.dnode(0, 0).out(), to_word(42));
  ASSERT_TRUE(res.bus_drive.has_value());
  EXPECT_EQ(*res.bus_drive, to_word(42));
}

TEST(Ring, LocalModeRunsPrivateProgram) {
  Harness h({1, 1, 4});
  // Local program: alternately emit 10 and 20.
  DnodeInstr a = pass_out(DnodeSrc::kImm);
  a.imm = 10;
  DnodeInstr b = pass_out(DnodeSrc::kImm);
  b.imm = 20;
  h.ring.write_local(0, 0, a.encode());
  h.ring.write_local(0, 1, b.encode());
  h.ring.write_local(0, LocalControl::kLimitSlot, 1);
  h.cfg.write_dnode_mode(0, DnodeMode::kLocal);
  h.step();
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 10u);
  h.step();
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 20u);
  h.step();
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 10u);
}

TEST(Ring, LocalCounterResetsOnModeEntry) {
  Harness h({1, 1, 4});
  DnodeInstr a = pass_out(DnodeSrc::kImm);
  a.imm = 10;
  DnodeInstr b = pass_out(DnodeSrc::kImm);
  b.imm = 20;
  h.ring.write_local(0, 0, a.encode());
  h.ring.write_local(0, 1, b.encode());
  h.ring.write_local(0, LocalControl::kLimitSlot, 1);
  h.cfg.write_dnode_mode(0, DnodeMode::kLocal);
  h.step();  // slot 0
  h.cfg.write_dnode_mode(0, DnodeMode::kGlobal);
  h.step();  // global nop; local counter now at 1
  h.cfg.write_dnode_mode(0, DnodeMode::kLocal);
  h.step();
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 10u)
      << "re-entering local mode must restart the program at slot 0";
}

TEST(Ring, StalledCycleDoesNotCommitModeTransition) {
  // local -> global where every global-mode cycle stalls -> local:
  // no global cycle ever advanced, so the local program must CONTINUE
  // where it left off, not restart at slot 0.  (Regression: the fetch
  // phase used to update the mode tracking before the stall check, so
  // the stalled global cycles "committed" the transition and re-entry
  // spuriously restarted the program.)
  Harness h({1, 1, 4});
  DnodeInstr a = pass_out(DnodeSrc::kImm);
  a.imm = 10;
  DnodeInstr b = pass_out(DnodeSrc::kImm);
  b.imm = 20;
  h.ring.write_local(0, 0, a.encode());
  h.ring.write_local(0, 1, b.encode());
  h.ring.write_local(0, LocalControl::kLimitSlot, 1);
  h.cfg.write_dnode_mode(0, DnodeMode::kLocal);
  h.step();  // slot 0 -> 10; counter now 1
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 10u);

  // Global instruction needs a host word that never arrives.
  h.cfg.write_dnode_instr(0, pass_out(DnodeSrc::kHost).encode());
  h.cfg.write_dnode_mode(0, DnodeMode::kGlobal);
  EXPECT_TRUE(h.step().stalled);
  EXPECT_TRUE(h.step().stalled);
  EXPECT_EQ(h.ring.dnode(0, 0).local().counter(), 1u)
      << "stalled cycles must not touch the local counter";

  h.cfg.write_dnode_mode(0, DnodeMode::kLocal);
  h.step();
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 20u)
      << "no global cycle committed: the program continues at slot 1";
}

TEST(Ring, ModeEntryStallKeepsLocalCounterUntouched) {
  // Entering local mode on a cycle that stalls: the counter reset
  // belongs to the commit phase, so the stalled cycles leave it alone
  // and the retry still starts the program at slot 0.
  Harness h({1, 1, 4});
  DnodeInstr eat = pass_out(DnodeSrc::kHost);
  DnodeInstr emit = pass_out(DnodeSrc::kImm);
  emit.imm = 20;
  h.ring.write_local(0, 0, eat.encode());
  h.ring.write_local(0, 1, emit.encode());
  h.ring.write_local(0, LocalControl::kLimitSlot, 1);

  // Advance the counter to 1 with a committed local cycle, then run a
  // committed global NOP cycle (counter keeps its value).
  h.cfg.write_dnode_mode(0, DnodeMode::kLocal);
  h.in.push_back(1);
  ASSERT_FALSE(h.step().stalled);
  h.cfg.write_dnode_mode(0, DnodeMode::kGlobal);
  ASSERT_FALSE(h.step().stalled);
  ASSERT_EQ(h.ring.dnode(0, 0).local().counter(), 1u);

  // Re-entry fetches slot 0, which pops -- and the FIFO is empty.
  h.cfg.write_dnode_mode(0, DnodeMode::kLocal);
  EXPECT_TRUE(h.step().stalled);
  EXPECT_EQ(h.ring.dnode(0, 0).local().counter(), 1u)
      << "the entry reset must not happen on a stalled cycle";
  h.in.push_back(9);
  EXPECT_FALSE(h.step().stalled);
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 9u) << "retry runs slot 0";
  h.step();
  EXPECT_EQ(h.ring.dnode(0, 0).out(), 20u) << "then slot 1";
}

TEST(Ring, StallLeavesStatisticsUntouched) {
  // A stalled cycle is a pure retry: every instrumentation counter
  // must read exactly as before the attempt.
  Harness h({2, 2, 4});
  SwitchRoute r00;  // dnode(0,0): host operand + a consumed fb read
  r00.in1 = PortRoute::host();
  r00.fifo1 = {1, 0, 2};
  h.cfg.write_switch_route(0, 0, r00.encode());
  DnodeInstr add;
  add.op = DnodeOp::kAdd;
  add.src_a = DnodeSrc::kIn1;
  add.src_b = DnodeSrc::kFifo1;
  add.out_en = true;
  add.host_en = true;
  add.bus_en = true;
  h.cfg.write_dnode_instr(0, add.encode());
  SwitchRoute tap;  // switch 1 lane 0 forwards to the host
  tap.host_out_en = true;
  h.cfg.write_switch_route(1, 0, tap.encode());
  DnodeInstr local10 = pass_out(DnodeSrc::kImm);
  local10.imm = 10;
  h.ring.write_local(1, 0, local10.encode());
  h.cfg.write_dnode_mode(1, DnodeMode::kLocal);

  h.in.push_back(3);
  ASSERT_FALSE(h.step().stalled);  // one committed cycle seeds stats

  const auto ops = h.ring.ops_per_dnode();
  const auto local_cycles = h.ring.local_cycles_per_dnode();
  const auto global_cycles = h.ring.global_cycles_per_dnode();
  const auto fb_reads = h.ring.fb_reads_per_pipe();
  const auto fb_depths = h.ring.fb_read_depth_counts();
  const auto host_out_words = h.ring.host_out_words_per_switch();
  const auto bus_drives = h.ring.bus_drives();
  const auto pipe_pushes = h.ring.pipeline(0).pushes();
  const auto out_words = h.out.size();
  const auto counter = h.ring.dnode(1, 0).local().counter();

  for (int c = 0; c < 3; ++c) {  // FIFO empty: every attempt stalls
    const auto res = h.step();
    ASSERT_TRUE(res.stalled);
    EXPECT_EQ(res.ops, 0u);
    EXPECT_EQ(res.host_words_in, 0u);
    EXPECT_EQ(res.host_words_out, 0u);
    EXPECT_FALSE(res.bus_drive.has_value());
  }

  EXPECT_EQ(h.ring.ops_per_dnode(), ops);
  EXPECT_EQ(h.ring.local_cycles_per_dnode(), local_cycles);
  EXPECT_EQ(h.ring.global_cycles_per_dnode(), global_cycles);
  EXPECT_EQ(h.ring.fb_reads_per_pipe(), fb_reads);
  EXPECT_EQ(h.ring.fb_read_depth_counts(), fb_depths);
  EXPECT_EQ(h.ring.host_out_words_per_switch(), host_out_words);
  EXPECT_EQ(h.ring.bus_drives(), bus_drives);
  EXPECT_EQ(h.ring.pipeline(0).pushes(), pipe_pushes);
  EXPECT_EQ(h.out.size(), out_words);
  EXPECT_EQ(h.ring.dnode(1, 0).local().counter(), counter);
}

TEST(Ring, CountsOpsAndUtilization) {
  Harness h({2, 1, 4});
  h.cfg.write_dnode_instr(0, pass_out(DnodeSrc::kImm).encode());
  for (int c = 0; c < 10; ++c) h.step();
  EXPECT_EQ(h.ring.ops_per_dnode()[0], 10u);
  EXPECT_EQ(h.ring.ops_per_dnode()[1], 0u);
}

TEST(Ring, MacCountsAsTwoArithOps) {
  Harness h({1, 1, 4});
  DnodeInstr mac;
  mac.op = DnodeOp::kMac;
  mac.src_a = DnodeSrc::kImm;
  mac.src_b = DnodeSrc::kImm;
  mac.src_c = DnodeSrc::kR0;
  mac.dst = DnodeDst::kR0;
  mac.imm = 1;
  h.cfg.write_dnode_instr(0, mac.encode());
  const auto res = h.step();
  EXPECT_EQ(res.ops, 1u);
  EXPECT_EQ(res.arith_ops, 2u);
}

TEST(Ring, OutOfGeometryFeedbackReadRejectedAtRuntime) {
  // The route encoding allows pipe/depth values larger than this
  // instance provides; the ring must reject them when executed, not
  // read out of bounds.
  Harness h({2, 1, 4});
  SwitchRoute r;
  r.in1 = PortRoute::feedback({7, 0, 0});  // pipe 7 does not exist
  DnodeInstr i = pass_out(DnodeSrc::kIn1);
  ConfigPage page = ConfigPage::zeroed({2, 1, 4});
  page.dnode_instr[0] = i.encode();
  page.switch_route[0] = r.encode();
  h.cfg.add_page(page);
  h.cfg.apply_page(0);
  EXPECT_THROW(h.step(), SimError);

  // Same for a depth beyond the pipeline.
  Harness h2({2, 1, 4});
  SwitchRoute r2;
  r2.fifo1 = {1, 0, 9};  // depth 9 in a 4-deep pipeline
  DnodeInstr i2 = pass_out(DnodeSrc::kFifo1);
  h2.cfg.write_dnode_instr(0, i2.encode());
  h2.cfg.write_switch_route(0, 0, r2.encode());
  EXPECT_THROW(h2.step(), SimError);
}

TEST(Ring, GeometryMismatchRejected) {
  Ring ring({2, 1, 4});
  ConfigMemory cfg({4, 1, 4});
  HostFifo in;
  std::vector<Word> out;
  EXPECT_THROW(ring.step(cfg, 0, in, out), SimError);
}

}  // namespace
}  // namespace sring
