// Unit and property tests for the Dnode microinstruction format.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "isa/dnode_instr.hpp"

namespace sring {
namespace {

TEST(DnodeInstr, DefaultEncodesToZero) {
  EXPECT_EQ(DnodeInstr{}.encode(), 0u);
  EXPECT_EQ(DnodeInstr::decode(0), DnodeInstr{});
}

TEST(DnodeInstr, FieldsSurviveRoundTrip) {
  DnodeInstr instr;
  instr.op = DnodeOp::kMac;
  instr.src_a = DnodeSrc::kIn1;
  instr.src_b = DnodeSrc::kImm;
  instr.src_c = DnodeSrc::kR2;
  instr.dst = DnodeDst::kR2;
  instr.out_en = true;
  instr.host_en = true;
  instr.imm = 0xBEEF;
  EXPECT_EQ(DnodeInstr::decode(instr.encode()), instr);
}

TEST(DnodeInstr, RandomRoundTripProperty) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    DnodeInstr instr;
    instr.op = static_cast<DnodeOp>(
        rng.next_below(static_cast<std::uint64_t>(DnodeOp::kOpCount)));
    instr.src_a = static_cast<DnodeSrc>(
        rng.next_below(static_cast<std::uint64_t>(DnodeSrc::kSrcCount)));
    instr.src_b = static_cast<DnodeSrc>(
        rng.next_below(static_cast<std::uint64_t>(DnodeSrc::kSrcCount)));
    instr.src_c = static_cast<DnodeSrc>(
        rng.next_below(static_cast<std::uint64_t>(DnodeSrc::kSrcCount)));
    instr.dst = static_cast<DnodeDst>(
        rng.next_below(static_cast<std::uint64_t>(DnodeDst::kDstCount)));
    instr.out_en = rng.next_below(2) != 0;
    instr.bus_en = rng.next_below(2) != 0;
    instr.host_en = rng.next_below(2) != 0;
    instr.imm = rng.next_word();
    EXPECT_EQ(DnodeInstr::decode(instr.encode()), instr);
  }
}

TEST(DnodeInstr, DecodeRejectsBadFields) {
  // Opcode field beyond kOpCount.
  EXPECT_THROW(DnodeInstr::decode(63), SimError);
  // srcA field = 15 (invalid source).
  EXPECT_THROW(DnodeInstr::decode(15ull << 6), SimError);
  // dst field = 7 (invalid destination).
  EXPECT_THROW(DnodeInstr::decode(7ull << 18), SimError);
}

TEST(DnodeInstr, EncodeFitsIn48Bits) {
  DnodeInstr instr;
  instr.op = DnodeOp::kSelect;
  instr.src_a = DnodeSrc::kR3;
  instr.src_b = DnodeSrc::kR3;
  instr.src_c = DnodeSrc::kR3;
  instr.dst = DnodeDst::kNone;
  instr.out_en = instr.bus_en = instr.host_en = true;
  instr.imm = 0xFFFF;
  EXPECT_LT(instr.encode(), 1ull << 48);
}

TEST(DnodeInstr, MnemonicRoundTrip) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(DnodeOp::kOpCount);
       ++i) {
    const auto op = static_cast<DnodeOp>(i);
    const auto parsed = parse_dnode_op(to_mnemonic(op));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, op);
  }
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(DnodeSrc::kSrcCount); ++i) {
    const auto src = static_cast<DnodeSrc>(i);
    EXPECT_EQ(parse_dnode_src(to_mnemonic(src)), src);
  }
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(DnodeDst::kDstCount); ++i) {
    const auto dst = static_cast<DnodeDst>(i);
    EXPECT_EQ(parse_dnode_dst(to_mnemonic(dst)), dst);
  }
  EXPECT_FALSE(parse_dnode_op("frobnicate").has_value());
}

TEST(DnodeInstr, OperandUsagePredicates) {
  EXPECT_FALSE(op_uses_b(DnodeOp::kPass));
  EXPECT_TRUE(op_uses_b(DnodeOp::kAdd));
  EXPECT_TRUE(op_uses_c(DnodeOp::kMac));
  EXPECT_FALSE(op_uses_c(DnodeOp::kAdd));
  EXPECT_TRUE(op_uses_c(DnodeOp::kSelect));
}

TEST(DnodeInstr, ToStringMentionsOperands) {
  DnodeInstr instr;
  instr.op = DnodeOp::kMac;
  instr.src_a = DnodeSrc::kIn1;
  instr.src_b = DnodeSrc::kImm;
  instr.src_c = DnodeSrc::kR0;
  instr.dst = DnodeDst::kR0;
  instr.imm = to_word(-3);
  instr.out_en = true;
  const std::string s = instr.to_string();
  EXPECT_NE(s.find("mac"), std::string::npos);
  EXPECT_NE(s.find("in1"), std::string::npos);
  EXPECT_NE(s.find("imm(-3)"), std::string::npos);
  EXPECT_NE(s.find("out"), std::string::npos);
}

}  // namespace
}  // namespace sring
