// Property fuzz: any canonical tool-generated program survives the
// full text round trip (disassemble -> reassemble) and the binary
// round trip (serialize -> deserialize) exactly.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "asm/disassembler.hpp"
#include "asm/object_file.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/local_control.hpp"
#include "isa/risc_instr.hpp"
#include "sim/program.hpp"

namespace sring {
namespace {

RingGeometry random_geometry(Rng& rng) {
  RingGeometry g;
  g.layers = 1 + rng.next_below(8);
  g.lanes = 1 + rng.next_below(4);
  g.fb_depth = 1 + rng.next_below(16);
  return g;
}

/// Canonical random microinstruction: unused operand fields zeroed,
/// immediate only present when an IMM source exists (what the
/// assembler can express and the disassembler emits).
DnodeInstr random_canonical_instr(Rng& rng) {
  DnodeInstr i;
  i.op = static_cast<DnodeOp>(
      rng.next_below(static_cast<std::uint64_t>(DnodeOp::kOpCount)));
  const auto random_src = [&]() {
    return static_cast<DnodeSrc>(
        rng.next_below(static_cast<std::uint64_t>(DnodeSrc::kSrcCount)));
  };
  if (i.op != DnodeOp::kNop) {
    i.src_a = random_src();
    if (op_uses_b(i.op)) i.src_b = random_src();
    if (op_uses_c(i.op)) i.src_c = random_src();
    i.dst = static_cast<DnodeDst>(
        rng.next_below(static_cast<std::uint64_t>(DnodeDst::kDstCount)));
  }
  const bool has_imm =
      i.src_a == DnodeSrc::kImm ||
      (op_uses_b(i.op) && i.src_b == DnodeSrc::kImm) ||
      (op_uses_c(i.op) && i.src_c == DnodeSrc::kImm);
  if (has_imm) i.imm = rng.next_word();
  i.out_en = rng.next_below(2) != 0;
  i.bus_en = rng.next_below(4) == 0;
  i.host_en = rng.next_below(4) == 0;
  return i;
}

SwitchRoute random_route(Rng& rng, const RingGeometry& g) {
  const auto random_fb = [&]() {
    FeedbackAddr a;
    a.pipe = static_cast<std::uint8_t>(rng.next_below(g.switch_count()));
    a.lane = static_cast<std::uint8_t>(rng.next_below(g.lanes));
    a.depth = static_cast<std::uint8_t>(rng.next_below(g.fb_depth));
    return a;
  };
  const auto random_port = [&]() -> PortRoute {
    switch (rng.next_below(5)) {
      case 0:
        return PortRoute::zero();
      case 1:
        return PortRoute::prev(
            static_cast<std::uint8_t>(rng.next_below(g.lanes)));
      case 2:
        return PortRoute::host();
      case 3:
        return PortRoute::bus();
      default:
        return PortRoute::feedback(random_fb());
    }
  };
  SwitchRoute r;
  r.in1 = random_port();
  r.in2 = random_port();
  r.fifo1 = random_fb();
  r.fifo2 = random_fb();
  r.host_out_en = rng.next_below(4) == 0;
  // Canonical form: the lane field is only meaningful when the tap is
  // enabled (the assembly syntax cannot express a disabled lane).
  if (r.host_out_en) {
    r.host_out_lane = static_cast<std::uint8_t>(rng.next_below(g.lanes));
  }
  return r;
}

RiscInstr random_canonical_risc(Rng& rng) {
  RiscInstr instr;
  instr.op = static_cast<RiscOp>(
      rng.next_below(static_cast<std::uint64_t>(RiscOp::kOpCount)));
  const auto reg = [&]() {
    return static_cast<std::uint8_t>(rng.next_below(kRiscRegCount));
  };
  switch (format_of(instr.op)) {
    case RiscFormat::kNone:
      break;
    case RiscFormat::kRdImm:
      instr.rd = reg();
      instr.imm = static_cast<std::int32_t>(rng.next_below(65536)) - 32768;
      break;
    case RiscFormat::kRdRa:
      instr.rd = reg();
      instr.ra = reg();
      break;
    case RiscFormat::kRdRaRb:
      instr.rd = reg();
      instr.ra = reg();
      instr.rb = reg();
      break;
    case RiscFormat::kRdRaImm:
      instr.rd = reg();
      instr.ra = reg();
      instr.imm = static_cast<std::int32_t>(rng.next_below(65536)) - 32768;
      break;
    case RiscFormat::kRaRbImm:
      instr.ra = reg();
      instr.rb = reg();
      instr.imm = static_cast<std::int32_t>(rng.next_below(65536)) - 32768;
      break;
    case RiscFormat::kImm:
      instr.imm = static_cast<std::int32_t>(
          rng.next_below(instr.op == RiscOp::kJmp ? 32768 : 65536));
      break;
    case RiscFormat::kRa:
      instr.ra = reg();
      break;
    case RiscFormat::kRd:
      instr.rd = reg();
      break;
    case RiscFormat::kRaRb:
      instr.ra = reg();
      instr.rb = reg();
      break;
  }
  return instr;
}

LoadableProgram random_program(std::uint64_t seed) {
  Rng rng(seed);
  LoadableProgram p;
  p.name = "fuzzprog";
  p.geometry = random_geometry(rng);

  const std::size_t code_len = 1 + rng.next_below(20);
  for (std::size_t i = 0; i < code_len; ++i) {
    p.controller_code.push_back(random_canonical_risc(rng).encode());
  }

  const std::size_t page_count = rng.next_below(3);
  for (std::size_t pi = 0; pi < page_count; ++pi) {
    ConfigPage page = ConfigPage::zeroed(p.geometry);
    for (auto& w : page.dnode_instr) {
      w = random_canonical_instr(rng).encode();
    }
    for (auto& m : page.dnode_mode) {
      m = static_cast<std::uint8_t>(rng.next_below(2));
    }
    for (auto& w : page.switch_route) {
      w = random_route(rng, p.geometry).encode();
    }
    p.pages.push_back(std::move(page));
  }

  // Local programs in canonical form: slots 0..n-1 then LIMIT = n-1.
  for (std::size_t d = 0; d < p.geometry.dnode_count(); ++d) {
    if (rng.next_below(2) == 0) continue;
    const std::size_t len = 1 + rng.next_below(kLocalProgramSlots);
    for (std::size_t s = 0; s < len; ++s) {
      p.local_init.push_back({static_cast<std::uint32_t>(d),
                              static_cast<std::uint8_t>(s),
                              random_canonical_instr(rng).encode()});
    }
    p.local_init.push_back(
        {static_cast<std::uint32_t>(d),
         static_cast<std::uint8_t>(LocalControl::kLimitSlot), len - 1});
  }
  return p;
}

class AsmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AsmFuzz, TextRoundTripIsExact) {
  const LoadableProgram original =
      random_program(static_cast<std::uint64_t>(GetParam()));
  const std::string listing = disassemble(original);
  LoadableProgram reparsed;
  try {
    reparsed = assemble(listing);
  } catch (const AsmError& e) {
    FAIL() << "disassembly did not reassemble: " << e.what() << "\n"
           << listing;
  }
  EXPECT_EQ(reparsed.geometry, original.geometry);
  EXPECT_EQ(reparsed.controller_code, original.controller_code);
  EXPECT_EQ(reparsed.pages, original.pages);
  EXPECT_EQ(reparsed.local_init, original.local_init);
}

TEST_P(AsmFuzz, BinaryRoundTripIsExact) {
  const LoadableProgram original =
      random_program(static_cast<std::uint64_t>(GetParam()));
  EXPECT_EQ(deserialize_program(serialize_program(original)), original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsmFuzz, ::testing::Range(0, 30));

class ObjectCorruptionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ObjectCorruptionFuzz, CorruptedObjectsNeverCrashTheLoader) {
  // Flipping any byte must either still parse (if the byte was slack,
  // e.g. a don't-care bit) or throw SimError — never crash or hang.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const LoadableProgram original =
      random_program(static_cast<std::uint64_t>(GetParam()));
  auto bytes = serialize_program(original);
  for (int trial = 0; trial < 50; ++trial) {
    auto corrupted = bytes;
    const std::size_t pos = rng.next_below(corrupted.size());
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      const LoadableProgram p = deserialize_program(corrupted);
      // If it parsed, it must at least be structurally sound.
      p.geometry.validate();
    } catch (const SimError&) {
      // Expected for most corruptions.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectCorruptionFuzz,
                         ::testing::Range(0, 10));

class TextCorruptionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TextCorruptionFuzz, MutatedSourceNeverCrashesTheAssembler) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  std::string source =
      disassemble(random_program(static_cast<std::uint64_t>(GetParam())));
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = source;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<char>(' ' + rng.next_below(95));
    try {
      (void)assemble(mutated);
    } catch (const AsmError&) {
      // Expected for most mutations.
    } catch (const SimError&) {
      // Geometry/structure violations surface as SimError.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextCorruptionFuzz,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace sring
