// Tests of the machine-readable RunReport (schema
// "sring.run_report.v1") and its file writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "json_test_util.hpp"
#include "kernels/mac_kernel.hpp"
#include "obs/host_shape.hpp"
#include "sim/report.hpp"
#include "sim/system.hpp"

namespace sring {
namespace {

/// A short but fully-featured run: one Dnode MACs 32 host pairs.
System& traced_system() {
  static System sys({RingGeometry{4, 2, 16}});
  static bool ran = false;
  if (!ran) {
    ran = true;
    sys.load(kernels::make_running_mac_program({4, 2, 16}));
    sys.host().send(std::vector<Word>(64, 2));
    sys.run_until_outputs(32, 1000);
  }
  return sys;
}

TEST(RunReport, FromSystemHasTheFullSchema) {
  const System& sys = traced_system();
  const obs::JsonValue j = RunReport::from_system("unit", sys).to_json();

  ASSERT_NE(j.find("schema"), nullptr);
  EXPECT_EQ(j.find("schema")->as_string(), "sring.run_report.v1");
  EXPECT_EQ(j.find("name")->as_string(), "unit");

  ASSERT_NE(j.find("geometry"), nullptr);
  EXPECT_EQ(j.find("geometry")->find("layers")->as_uint(), 4u);
  EXPECT_EQ(j.find("geometry")->find("lanes")->as_uint(), 2u);
  EXPECT_EQ(j.find("cycles")->as_uint(), sys.stats().cycles);

  const obs::JsonValue* stats = j.find("stats");
  ASSERT_NE(stats, nullptr);
  for (const char* key :
       {"cycles", "ring_stall_cycles", "ctrl_stall_cycles", "dnode_ops",
        "arith_ops", "host_words_in", "host_words_out", "ctrl_instructions",
        "config_words_written", "bus_drives", "bus_conflicts",
        "switch_route_changes", "utilization"}) {
    EXPECT_NE(stats->find(key), nullptr) << "stats." << key;
  }
  EXPECT_GT(stats->find("utilization")->as_double(), 0.0);

  const obs::JsonValue* stalls = j.find("stalls");
  ASSERT_NE(stalls, nullptr);
  EXPECT_NE(stalls->find("ring_host_underflow"), nullptr);
  EXPECT_NE(stalls->find("ctrl_inpop"), nullptr);
  EXPECT_NE(stalls->find("ctrl_wait"), nullptr);

  ASSERT_NE(j.find("host"), nullptr);
  EXPECT_EQ(j.find("host")->find("words_in")->as_uint(), 64u);

  // Per-component detail: 8 Dnodes, 4 switches.
  const obs::JsonValue* dnodes = j.find("dnodes");
  ASSERT_NE(dnodes, nullptr);
  ASSERT_EQ(dnodes->items().size(), 8u);
  const obs::JsonValue& d0 = dnodes->items()[0];
  EXPECT_EQ(d0.find("layer")->as_uint(), 0u);
  EXPECT_EQ(d0.find("lane")->as_uint(), 0u);
  EXPECT_GT(d0.find("issue")->as_uint(), 0u);
  EXPECT_GT(d0.find("mac")->as_uint(), 0u);
  ASSERT_NE(j.find("switches"), nullptr);
  ASSERT_EQ(j.find("switches")->items().size(), 4u);
  EXPECT_NE(j.find("switches")->items()[0].find("route_changes"), nullptr);
  EXPECT_NE(j.find("switches")->items()[0].find("host_out_words"), nullptr);

  // Full metrics registry rides along.
  const obs::JsonValue* metrics = j.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("counters")->find("sys.cycles")->as_uint(),
            sys.stats().cycles);
  EXPECT_NE(metrics->find("histograms")->find("host.in_fifo_depth"),
            nullptr);
}

TEST(RunReport, FromStatsIsAggregateOnly) {
  SystemStats s;
  s.cycles = 10;
  s.dnode_ops = 5;
  const obs::JsonValue j = RunReport::from_stats("agg", s).to_json();
  EXPECT_EQ(j.find("name")->as_string(), "agg");
  EXPECT_EQ(j.find("cycles")->as_uint(), 10u);
  EXPECT_EQ(j.find("geometry"), nullptr);
  EXPECT_EQ(j.find("dnodes"), nullptr);
  EXPECT_EQ(j.find("switches"), nullptr);
  EXPECT_EQ(j.find("metrics"), nullptr);
  // No geometry -> no utilization entry.
  EXPECT_EQ(j.find("stats")->find("utilization"), nullptr);
}

TEST(RunReport, ExtrasChainInInsertionOrder) {
  RunReport r;
  r.name = "model_only";
  r.extra("zeta", 1.5).extra("alpha", std::uint64_t{2});
  const obs::JsonValue j = r.to_json();
  EXPECT_EQ(j.find("cycles"), nullptr) << "no stats were attached";
  const obs::JsonValue* extras = j.find("extras");
  ASSERT_NE(extras, nullptr);
  ASSERT_EQ(extras->members().size(), 2u);
  EXPECT_EQ(extras->members()[0].first, "zeta");
  EXPECT_EQ(extras->members()[1].first, "alpha");
}

TEST(RunReport, WriteRunReportRoundTripsThroughDisk) {
  const RunReport report = RunReport::from_system("disk", traced_system());
  const std::string path = testing::TempDir() + "sring_report_test.json";
  write_run_report(report, path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const obs::JsonValue parsed = test::parse_json(ss.str());

  // On disk == in memory, plus the injected extras.host block.
  obs::JsonValue expected = report.to_json();
  obs::JsonValue extras = obs::JsonValue::object();
  extras.set("host", obs::host_shape_json());
  expected.set("extras", std::move(extras));
  EXPECT_EQ(parsed.dump(), expected.dump());
  std::remove(path.c_str());
}

TEST(RunReport, WrittenReportSelfDescribesTheHost) {
  RunReport r;
  r.name = "host_shape";
  const std::string path = testing::TempDir() + "sring_host_shape.json";
  write_run_report(r, path);

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const obs::JsonValue parsed = test::parse_json(ss.str());
  const obs::JsonValue* host = parsed.find("extras")->find("host");
  ASSERT_NE(host, nullptr);
  EXPECT_GE(host->find("cores")->as_uint(), 1u);
  EXPECT_GE(host->find("page_size")->as_uint(), 512u);
  const std::string build = host->find("build_type")->as_string();
  EXPECT_TRUE(build == "release" || build == "debug");
  EXPECT_NE(host->find("compiler"), nullptr);
  EXPECT_NE(host->find("lto"), nullptr);
  EXPECT_NE(host->find("sanitizers"), nullptr);
  std::remove(path.c_str());
}

TEST(RunReport, AnExplicitHostExtraIsNotOverwritten) {
  RunReport r;
  r.name = "pinned_host";
  obs::JsonValue fake = obs::JsonValue::object();
  fake.set("cores", std::uint64_t{12345});
  r.extra("host", std::move(fake));
  const std::string path = testing::TempDir() + "sring_pinned_host.json";
  write_run_report(r, path);

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const obs::JsonValue parsed = test::parse_json(ss.str());
  EXPECT_EQ(
      parsed.find("extras")->find("host")->find("cores")->as_uint(),
      12345u);
  std::remove(path.c_str());
}

TEST(RunReport, WriteRunReportThrowsOnUnwritablePath) {
  EXPECT_THROW(
      write_run_report(RunReport{}, "/nonexistent-dir/report.json"),
      SimError);
}

TEST(RunReport, MaybeWriteIsANoOpOnEmptyPath) {
  maybe_write_run_report(RunReport{}, "");  // must not throw
}

}  // namespace
}  // namespace sring
