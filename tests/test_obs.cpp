// Unit tests of the observability primitives: the JSON document model,
// counters / histograms / the registry, and the event-track table.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "json_test_util.hpp"
#include "obs/event.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace sring::obs {
namespace {

TEST(Json, ScalarsSerializeExactly) {
  EXPECT_EQ(JsonValue(nullptr).dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(std::int64_t{-42}).dump(), "-42");
  EXPECT_EQ(JsonValue(std::uint64_t{18446744073709551615ull}).dump(),
            "18446744073709551615");
  EXPECT_EQ(JsonValue(0.5).dump(), "0.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  std::ostringstream os;
  write_json_string(os, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(Json, ObjectKeepsInsertionOrderAndOverwritesInPlace) {
  JsonValue obj = JsonValue::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("zebra", 3);  // overwrite must not move the key
  EXPECT_EQ(obj.dump(), "{\"zebra\":3,\"alpha\":2}");
  ASSERT_NE(obj.find("alpha"), nullptr);
  EXPECT_EQ(obj.find("alpha")->as_uint(), 2u);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, NestedDocumentRoundTripsThroughTestParser) {
  JsonValue doc = JsonValue::object();
  doc.set("list", JsonValue::array()
                      .push_back(1)
                      .push_back("two")
                      .push_back(JsonValue(nullptr)));
  doc.set("neg", std::int64_t{-7});
  doc.set("pi", 3.25);
  const std::string text = doc.dump();
  const JsonValue back = test::parse_json(text);
  EXPECT_EQ(back.dump(), text);
}

TEST(Metrics, CounterAddAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  c.set(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(Metrics, HistogramBucketsSamplesAndOverflow) {
  Histogram h({1, 2, 4});
  for (const std::uint64_t s : {0u, 1u, 2u, 3u, 4u, 100u}) h.record(s);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.max(), 100u);
  // Buckets: <=1 -> {0,1}, <=2 -> {2}, <=4 -> {3,4}, overflow -> {100}.
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 2u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2, 1}), SimError);
}

TEST(Metrics, HistogramFromCountsPadsMissingTail) {
  const Histogram h = Histogram::from_counts({1, 2}, {5, 7});
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 5u);
  EXPECT_EQ(h.bucket_counts()[1], 7u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.count(), 12u);
}

TEST(Metrics, RegistryGetOrCreateAndSortedIteration) {
  Registry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.counter("z.last").add(1);  // same counter, not a new one
  EXPECT_EQ(reg.size(), 2u);
  ASSERT_NE(reg.find_counter("z.last"), nullptr);
  EXPECT_EQ(reg.find_counter("z.last")->value(), 2u);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  // std::map iteration is name-sorted -> deterministic serialization.
  EXPECT_EQ(reg.counters().begin()->first, "a.first");
}

TEST(Metrics, RegistryToJsonShape) {
  Registry reg;
  reg.counter("hits").set(3);
  reg.histogram("depth", {1, 2}).record(2);
  const JsonValue j = reg.to_json();
  ASSERT_NE(j.find("counters"), nullptr);
  ASSERT_NE(j.find("histograms"), nullptr);
  EXPECT_EQ(j.find("counters")->find("hits")->as_uint(), 3u);
  const JsonValue* h = j.find("histograms")->find("depth");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->as_uint(), 1u);
}

TEST(Event, TrackTableCoversEveryComponent) {
  const auto tracks = make_tracks(3, 2);  // 6 Dnodes, 3 switches
  ASSERT_EQ(tracks.size(), 3u + 6u + 3u);
  EXPECT_EQ(tracks[kControllerTrack].name, "ctrl");
  EXPECT_EQ(tracks[kBusTrack].name, "bus");
  EXPECT_EQ(tracks[kRingTrack].name, "ring");
  EXPECT_EQ(tracks[dnode_track(0)].kind, TrackKind::kDnode);
  EXPECT_EQ(tracks[dnode_track(5)].name, "dnode 2.1");
  EXPECT_EQ(tracks[switch_track(6, 0)].kind, TrackKind::kSwitch);
  EXPECT_EQ(tracks[switch_track(6, 2)].name, "switch 2");
  // Chrome pid grouping: system 1, Dnodes 2, switches 3.
  EXPECT_EQ(tracks[kControllerTrack].pid, 1u);
  EXPECT_EQ(tracks[dnode_track(0)].pid, 2u);
  EXPECT_EQ(tracks[switch_track(6, 0)].pid, 3u);
  EXPECT_EQ(tracks[dnode_track(3)].tid, 3u);
  EXPECT_EQ(tracks[switch_track(6, 1)].tid, 1u);
}

}  // namespace
}  // namespace sring::obs
