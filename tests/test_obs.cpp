// Unit tests of the observability primitives: the JSON document model,
// counters / histograms / the registry, and the event-track table.
#include <gtest/gtest.h>

#include <sstream>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "json_test_util.hpp"
#include "obs/event.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/quantile.hpp"

namespace sring::obs {
namespace {

TEST(Json, ScalarsSerializeExactly) {
  EXPECT_EQ(JsonValue(nullptr).dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(std::int64_t{-42}).dump(), "-42");
  EXPECT_EQ(JsonValue(std::uint64_t{18446744073709551615ull}).dump(),
            "18446744073709551615");
  EXPECT_EQ(JsonValue(0.5).dump(), "0.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  std::ostringstream os;
  write_json_string(os, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(Json, ObjectKeepsInsertionOrderAndOverwritesInPlace) {
  JsonValue obj = JsonValue::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("zebra", 3);  // overwrite must not move the key
  EXPECT_EQ(obj.dump(), "{\"zebra\":3,\"alpha\":2}");
  ASSERT_NE(obj.find("alpha"), nullptr);
  EXPECT_EQ(obj.find("alpha")->as_uint(), 2u);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, NestedDocumentRoundTripsThroughTestParser) {
  JsonValue doc = JsonValue::object();
  doc.set("list", JsonValue::array()
                      .push_back(1)
                      .push_back("two")
                      .push_back(JsonValue(nullptr)));
  doc.set("neg", std::int64_t{-7});
  doc.set("pi", 3.25);
  const std::string text = doc.dump();
  const JsonValue back = test::parse_json(text);
  EXPECT_EQ(back.dump(), text);
}

TEST(Metrics, CounterAddAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  c.set(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(Metrics, HistogramBucketsSamplesAndOverflow) {
  Histogram h({1, 2, 4});
  for (const std::uint64_t s : {0u, 1u, 2u, 3u, 4u, 100u}) h.record(s);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.max(), 100u);
  // Buckets: <=1 -> {0,1}, <=2 -> {2}, <=4 -> {3,4}, overflow -> {100}.
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 2u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2, 1}), SimError);
}

TEST(Metrics, HistogramFromCountsPadsMissingTail) {
  const Histogram h = Histogram::from_counts({1, 2}, {5, 7});
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 5u);
  EXPECT_EQ(h.bucket_counts()[1], 7u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.count(), 12u);
}

TEST(Metrics, MergeFromAccumulatesMatchingHistograms) {
  Histogram a({1, 2, 4});
  Histogram b({1, 2, 4});
  a.record(1);
  a.record(3);
  b.record(2);
  b.record(100);
  ASSERT_TRUE(a.merge_from(b));
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 106u);
  EXPECT_EQ(a.max(), 100u);
  // One sample per bucket: {1}, {2}, {3<=4}, overflow {100}.
  EXPECT_EQ(a.bucket_counts(),
            (std::vector<std::uint64_t>{1, 1, 1, 1}));
}

TEST(Metrics, MergeEmptyIntoNonEmptyIsIdentity) {
  Histogram a({1, 2});
  a.record(2);
  const std::uint64_t count = a.count(), sum = a.sum(), max = a.max();
  ASSERT_TRUE(a.merge_from(Histogram({1, 2})));
  EXPECT_EQ(a.count(), count);
  EXPECT_EQ(a.sum(), sum);
  EXPECT_EQ(a.max(), max);

  // ...and the other direction adopts the non-empty side verbatim.
  Histogram empty({1, 2});
  ASSERT_TRUE(empty.merge_from(a));
  EXPECT_EQ(empty.count(), count);
  EXPECT_EQ(empty.bucket_counts(), a.bucket_counts());
}

TEST(Metrics, MergeSaturatesInsteadOfWrapping) {
  const std::uint64_t kMax = UINT64_MAX;
  Histogram a = Histogram::from_counts({1}, {kMax - 1, 0});
  const Histogram b = Histogram::from_counts({1}, {5, 0});
  ASSERT_TRUE(a.merge_from(b));
  // kMax-1 + 5 would wrap to 3; it must pin at the ceiling instead.
  EXPECT_EQ(a.bucket_counts()[0], kMax);
  EXPECT_EQ(a.count(), kMax);
}

TEST(Metrics, MergeDetectsMismatchedBounds) {
  Histogram a({1, 2});
  a.record(1);
  Histogram b({1, 4});
  b.record(1);
  EXPECT_FALSE(a.merge_from(b));
  // A refused merge leaves the target untouched.
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.bucket_counts()[0], 1u);

  Registry ra, rb;
  ra.histogram("h", {1, 2}).record(1);
  rb.histogram("h", {1, 4}).record(1);
  EXPECT_THROW(ra.merge_from(rb), SimError);
}

// The hand-rolled percentile bench_serve carried before the helper
// moved into obs/ — kept verbatim as the reference implementation.
double reference_percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

TEST(Quantile, PercentileSortedMatchesTheReferenceExactly) {
  const std::vector<std::vector<double>> cases = {
      {},
      {42.0},
      {1.0, 2.0},
      {1.0, 2.0, 3.0, 4.0, 5.0},
      {0.5, 0.5, 0.5, 100.0},
      {-3.0, -1.0, 0.0, 7.5, 7.5, 128.0, 4096.0},
  };
  for (const auto& sorted : cases) {
    for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      EXPECT_DOUBLE_EQ(percentile_sorted(sorted, q),
                       reference_percentile(sorted, q))
          << "n=" << sorted.size() << " q=" << q;
    }
  }
}

TEST(Quantile, HistogramQuantileInterpolatesWithinBuckets) {
  Histogram h(latency_bounds_us());
  for (std::uint64_t i = 0; i < 100; ++i) h.record(10);  // all in (5,10]
  // Every quantile of a single-bucket population lands in that bucket.
  EXPECT_GT(histogram_quantile(h, 0.5), 5.0);
  EXPECT_LE(histogram_quantile(h, 0.5), 10.0);
  EXPECT_LE(histogram_quantile(h, 0.99), 10.0);
}

TEST(Quantile, HistogramQuantileHandlesEmptyAndOverflow) {
  Histogram empty({1, 2});
  EXPECT_EQ(histogram_quantile(empty, 0.5), 0.0);

  Histogram h({1, 2});
  h.record(1);
  h.record(1000);  // overflow bucket
  // Overflow quantiles report the observed max, never a fabricated
  // bound, and no quantile exceeds it.
  EXPECT_EQ(histogram_quantile(h, 0.99), 1000.0);
  EXPECT_LE(histogram_quantile(h, 0.5), 1000.0);
}

TEST(Quantile, LatencyBoundsAreSharedAndSorted) {
  const auto& bounds = latency_bounds_us();
  ASSERT_FALSE(bounds.empty());
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  // Same object every call: fleet merges can never mismatch on shape.
  EXPECT_EQ(&latency_bounds_us(), &bounds);
}

TEST(Metrics, RegistryGetOrCreateAndSortedIteration) {
  Registry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.counter("z.last").add(1);  // same counter, not a new one
  EXPECT_EQ(reg.size(), 2u);
  ASSERT_NE(reg.find_counter("z.last"), nullptr);
  EXPECT_EQ(reg.find_counter("z.last")->value(), 2u);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  // std::map iteration is name-sorted -> deterministic serialization.
  EXPECT_EQ(reg.counters().begin()->first, "a.first");
}

TEST(Metrics, RegistryToJsonShape) {
  Registry reg;
  reg.counter("hits").set(3);
  reg.histogram("depth", {1, 2}).record(2);
  const JsonValue j = reg.to_json();
  ASSERT_NE(j.find("counters"), nullptr);
  ASSERT_NE(j.find("histograms"), nullptr);
  EXPECT_EQ(j.find("counters")->find("hits")->as_uint(), 3u);
  const JsonValue* h = j.find("histograms")->find("depth");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->as_uint(), 1u);
}

TEST(Event, TrackTableCoversEveryComponent) {
  const auto tracks = make_tracks(3, 2);  // 6 Dnodes, 3 switches
  ASSERT_EQ(tracks.size(), 3u + 6u + 3u);
  EXPECT_EQ(tracks[kControllerTrack].name, "ctrl");
  EXPECT_EQ(tracks[kBusTrack].name, "bus");
  EXPECT_EQ(tracks[kRingTrack].name, "ring");
  EXPECT_EQ(tracks[dnode_track(0)].kind, TrackKind::kDnode);
  EXPECT_EQ(tracks[dnode_track(5)].name, "dnode 2.1");
  EXPECT_EQ(tracks[switch_track(6, 0)].kind, TrackKind::kSwitch);
  EXPECT_EQ(tracks[switch_track(6, 2)].name, "switch 2");
  // Chrome pid grouping: system 1, Dnodes 2, switches 3.
  EXPECT_EQ(tracks[kControllerTrack].pid, 1u);
  EXPECT_EQ(tracks[dnode_track(0)].pid, 2u);
  EXPECT_EQ(tracks[switch_track(6, 0)].pid, 3u);
  EXPECT_EQ(tracks[dnode_track(3)].tid, 3u);
  EXPECT_EQ(tracks[switch_track(6, 1)].tid, 1u);
}

}  // namespace
}  // namespace sring::obs
