// Property fuzz for the canonical DFG wire codec (svc/dfg_codec):
// every valid graph round-trips byte-exactly (so the FNV-1a content
// hash is a stable identity), and arbitrarily mutated or truncated
// bytes never crash the decoder — they either still decode or raise a
// typed SimError, mirroring the test_asm_fuzz discipline for object
// files.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mapper/dfg.hpp"
#include "svc/dfg_codec.hpp"

namespace sring::svc {
namespace {

using mapper::Dfg;
using mapper::DfgNode;
using mapper::DfgOp;
using mapper::NodeId;

constexpr DfgOp kAllOps[] = {
    DfgOp::kInput, DfgOp::kConst, DfgOp::kAdd,  DfgOp::kSub,
    DfgOp::kMul,   DfgOp::kAbsdiff, DfgOp::kMin, DfgOp::kMax,
    DfgOp::kAnd,   DfgOp::kOr,    DfgOp::kXor,  DfgOp::kShl,
    DfgOp::kAsr,   DfgOp::kPass,  DfgOp::kNot,  DfgOp::kAbs,
    DfgOp::kDelay,
};

/// Random structurally-valid graph via Dfg::assemble.  Combinational
/// operands always reference earlier nodes; delay operands may
/// reference *later* nodes (the wire level can express recursion), so
/// the generator covers both feed-forward and recursive shapes.
Dfg random_dfg(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = 1 + rng.next_below(24);
  std::vector<DfgNode> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    DfgNode node;
    if (i == 0) {
      // The first node has no predecessors: must be arity 0.
      node.op = rng.next_below(2) == 0 ? DfgOp::kInput : DfgOp::kConst;
    } else {
      node.op = kAllOps[rng.next_below(std::size(kAllOps))];
    }
    switch (mapper::dfg_arity(node.op)) {
      case 0:
        if (node.op == DfgOp::kConst) node.value = rng.next_word();
        break;
      case 1:
        if (node.op == DfgOp::kDelay) {
          // Forward references allowed: any node in the graph.
          node.a = static_cast<NodeId>(rng.next_below(n));
          node.delay = 1 + static_cast<unsigned>(rng.next_below(16));
        } else {
          node.a = static_cast<NodeId>(rng.next_below(i));
        }
        break;
      case 2:
        node.a = static_cast<NodeId>(rng.next_below(i));
        node.b = static_cast<NodeId>(rng.next_below(i));
        break;
    }
    if (node.op == DfgOp::kInput || rng.next_below(4) == 0) {
      node.name = "n" + std::to_string(i);
    }
    nodes.push_back(std::move(node));
  }
  std::vector<NodeId> outputs;
  const std::size_t out_count = rng.next_below(4);  // 0 outputs is legal here
  for (std::size_t i = 0; i < out_count; ++i) {
    outputs.push_back(static_cast<NodeId>(rng.next_below(n)));
  }
  return Dfg::assemble(std::move(nodes), std::move(outputs));
}

bool same_structure(const Dfg& a, const Dfg& b) {
  if (a.outputs() != b.outputs() || a.inputs() != b.inputs()) return false;
  if (a.nodes().size() != b.nodes().size()) return false;
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    const DfgNode& x = a.nodes()[i];
    const DfgNode& y = b.nodes()[i];
    if (x.op != y.op || x.a != y.a || x.b != y.b || x.value != y.value ||
        x.delay != y.delay || x.name != y.name) {
      return false;
    }
  }
  return true;
}

class DfgCodecFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DfgCodecFuzz, RoundTripIsByteExactAndHashStable) {
  const Dfg original = random_dfg(static_cast<std::uint64_t>(GetParam()));
  const std::vector<std::uint8_t> bytes = encode_dfg(original);
  const Dfg decoded = decode_dfg(bytes);
  EXPECT_TRUE(same_structure(original, decoded));

  // Canonical: re-encoding reproduces the exact bytes, so the raw-byte
  // hash IS the content hash (the cache-hit path never decodes).
  const std::vector<std::uint8_t> again = encode_dfg(decoded);
  EXPECT_EQ(again, bytes);
  EXPECT_EQ(dfg_hash(bytes), dfg_hash(original));
  EXPECT_EQ(dfg_hash(again), dfg_hash(bytes));
}

TEST_P(DfgCodecFuzz, MutatedBytesNeverCrashTheDecoder) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  const auto bytes = encode_dfg(random_dfg(
      static_cast<std::uint64_t>(GetParam())));
  for (int trial = 0; trial < 60; ++trial) {
    auto mutated = bytes;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      const Dfg d = decode_dfg(mutated);
      // If it decoded, the structure must hold (assemble enforced it).
      EXPECT_LE(d.nodes().size(), kMaxDfgNodes);
    } catch (const SimError&) {
      // Expected for most mutations — a typed error, never a crash.
    }
  }
}

TEST_P(DfgCodecFuzz, EveryTruncationIsATypedError) {
  const auto bytes = encode_dfg(random_dfg(
      static_cast<std::uint64_t>(GetParam())));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix(bytes.data(), len);
    EXPECT_THROW((void)decode_dfg(prefix), SimError) << "prefix " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfgCodecFuzz, ::testing::Range(0, 20));

Dfg small_graph() {
  Dfg dfg;
  const NodeId x = dfg.add_input("x");
  const NodeId k = dfg.add_const(3);
  const NodeId m = dfg.add_binary(DfgOp::kMul, x, k);
  const NodeId d = dfg.add_delay(m, 1);
  const NodeId y = dfg.add_binary(DfgOp::kAdd, m, d);
  dfg.mark_output(y, "out");
  return dfg;
}

TEST(DfgCodec, KnownBlobOffsetsRejectPrecisely) {
  const auto bytes = encode_dfg(small_graph());

  {  // magic at offset 0
    auto b = bytes;
    b[0] = 'X';
    EXPECT_THROW((void)decode_dfg(b), SimError);
  }
  {  // codec version at offset 4
    auto b = bytes;
    b[4] = 0x7F;
    try {
      (void)decode_dfg(b);
      FAIL() << "bad version accepted";
    } catch (const SimError& e) {
      EXPECT_NE(std::string(e.what()).find("unsupported codec version"),
                std::string::npos);
    }
  }
  {  // node count at offset 6: zero nodes
    auto b = bytes;
    b[6] = 0;
    EXPECT_THROW((void)decode_dfg(b), SimError);
  }
  {  // first node's op byte at offset 10
    auto b = bytes;
    b[10] = 0xEE;
    try {
      (void)decode_dfg(b);
      FAIL() << "unknown op accepted";
    } catch (const SimError& e) {
      EXPECT_NE(std::string(e.what()).find("unknown op"),
                std::string::npos);
    }
  }
  {  // first node's declared arity at offset 11 (input expects 0)
    auto b = bytes;
    b[11] = 2;
    try {
      (void)decode_dfg(b);
      FAIL() << "arity mismatch accepted";
    } catch (const SimError& e) {
      EXPECT_NE(std::string(e.what()).find("arity mismatch"),
                std::string::npos);
    }
  }
  {  // trailing garbage after a complete graph
    auto b = bytes;
    b.push_back(0xAB);
    try {
      (void)decode_dfg(b);
      FAIL() << "trailing bytes accepted";
    } catch (const SimError& e) {
      EXPECT_NE(std::string(e.what()).find("trailing bytes"),
                std::string::npos);
    }
  }
}

TEST(DfgCodec, HashSeparatesNearbyGraphs) {
  Dfg a = small_graph();
  Dfg b;  // identical but for the constant
  const NodeId x = b.add_input("x");
  const NodeId k = b.add_const(4);
  const NodeId m = b.add_binary(DfgOp::kMul, x, k);
  const NodeId d = b.add_delay(m, 1);
  b.mark_output(b.add_binary(DfgOp::kAdd, m, d), "out");
  EXPECT_NE(dfg_hash(a), dfg_hash(b));
  EXPECT_EQ(dfg_hash_hex(dfg_hash(a)).size(), 16u);
}

TEST(DfgCodec, EncodeRejectsOversizedGraphs) {
  EXPECT_THROW((void)encode_dfg(Dfg{}), SimError);  // empty

  std::vector<DfgNode> nodes(kMaxDfgNodes + 1);
  nodes[0].op = DfgOp::kInput;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    nodes[i].op = DfgOp::kPass;
    nodes[i].a = 0;
  }
  EXPECT_THROW(
      (void)encode_dfg(Dfg::assemble(std::move(nodes), {0})), SimError);
}

TEST(DfgCodec, AssembleRejectsBrokenStructure) {
  {  // combinational forward reference
    std::vector<DfgNode> nodes(2);
    nodes[0].op = DfgOp::kPass;
    nodes[0].a = 1;  // references a later node
    nodes[1].op = DfgOp::kInput;
    EXPECT_THROW((void)Dfg::assemble(std::move(nodes), {}), SimError);
  }
  {  // delay operand out of range
    std::vector<DfgNode> nodes(1);
    nodes[0].op = DfgOp::kDelay;
    nodes[0].a = 9;
    nodes[0].delay = 1;
    EXPECT_THROW((void)Dfg::assemble(std::move(nodes), {}), SimError);
  }
  {  // output id out of range
    std::vector<DfgNode> nodes(1);
    nodes[0].op = DfgOp::kInput;
    EXPECT_THROW((void)Dfg::assemble(std::move(nodes), {5}), SimError);
  }
}

}  // namespace
}  // namespace sring::svc
