// Unit and property tests for the Dnode ALU/multiplier datapath.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/alu.hpp"
#include "tile/gemm_ref.hpp"

namespace sring {
namespace {

Word w(std::int32_t v) { return to_word(v); }

TEST(Alu, BasicArithmetic) {
  EXPECT_EQ(alu_execute(DnodeOp::kAdd, w(3), w(4), 0), w(7));
  EXPECT_EQ(alu_execute(DnodeOp::kSub, w(3), w(4), 0), w(-1));
  EXPECT_EQ(alu_execute(DnodeOp::kRsub, w(3), w(4), 0), w(1));
  EXPECT_EQ(alu_execute(DnodeOp::kMul, w(-3), w(4), 0), w(-12));
  EXPECT_EQ(alu_execute(DnodeOp::kMac, w(2), w(5), w(100)), w(110));
  EXPECT_EQ(alu_execute(DnodeOp::kMsu, w(2), w(5), w(100)), w(90));
  EXPECT_EQ(alu_execute(DnodeOp::kPass, w(-77), w(1), w(2)), w(-77));
  EXPECT_EQ(alu_execute(DnodeOp::kNop, w(9), w(9), w(9)), w(0));
}

TEST(Alu, WrappingSemantics) {
  EXPECT_EQ(alu_execute(DnodeOp::kAdd, w(32767), w(1), 0), w(-32768));
  EXPECT_EQ(alu_execute(DnodeOp::kSub, w(-32768), w(1), 0), w(32767));
  EXPECT_EQ(alu_execute(DnodeOp::kMul, w(256), w(256), 0), w(0));
}

TEST(Alu, SaturatingVariants) {
  EXPECT_EQ(alu_execute(DnodeOp::kAdds, w(32767), w(1), 0), w(32767));
  EXPECT_EQ(alu_execute(DnodeOp::kSubs, w(-32768), w(1), 0), w(-32768));
  EXPECT_EQ(alu_execute(DnodeOp::kAdds, w(100), w(23), 0), w(123));
}

TEST(Alu, MulHigh) {
  // 0x4000 * 0x4000 = 0x10000000 -> high half 0x1000.
  EXPECT_EQ(alu_execute(DnodeOp::kMulh, w(0x4000), w(0x4000), 0),
            w(0x1000));
  // (-32768)^2 = 0x40000000 -> high half 0x4000.
  EXPECT_EQ(alu_execute(DnodeOp::kMulh, w(-32768), w(-32768), 0),
            w(0x4000));
}

TEST(Alu, LogicAndShifts) {
  EXPECT_EQ(alu_execute(DnodeOp::kAnd, 0xF0F0u, 0xFF00u, 0), 0xF000u);
  EXPECT_EQ(alu_execute(DnodeOp::kOr, 0xF0F0u, 0x0F00u, 0), 0xFFF0u);
  EXPECT_EQ(alu_execute(DnodeOp::kXor, 0xFFFFu, 0x00FFu, 0), 0xFF00u);
  EXPECT_EQ(alu_execute(DnodeOp::kNot, 0x00FFu, 0, 0), 0xFF00u);
  EXPECT_EQ(alu_execute(DnodeOp::kShl, w(1), w(15), 0), Word{0x8000});
  EXPECT_EQ(alu_execute(DnodeOp::kShr, Word{0x8000}, w(15), 0), w(1));
  EXPECT_EQ(alu_execute(DnodeOp::kAsr, w(-4), w(1), 0), w(-2));
  // Shift amounts use only the low 4 bits of B.
  EXPECT_EQ(alu_execute(DnodeOp::kShl, w(1), w(16), 0), w(1));
}

TEST(Alu, AbsAndAbsdiff) {
  EXPECT_EQ(alu_execute(DnodeOp::kAbs, w(-5), 0, 0), w(5));
  EXPECT_EQ(alu_execute(DnodeOp::kAbs, w(5), 0, 0), w(5));
  EXPECT_EQ(alu_execute(DnodeOp::kAbs, w(-32768), 0, 0), w(-32768));
  EXPECT_EQ(alu_execute(DnodeOp::kAbsdiff, w(3), w(10), 0), w(7));
  EXPECT_EQ(alu_execute(DnodeOp::kAbsdiff, w(10), w(3), 0), w(7));
}

TEST(Alu, MinMaxCompareSelect) {
  EXPECT_EQ(alu_execute(DnodeOp::kMin, w(-3), w(2), 0), w(-3));
  EXPECT_EQ(alu_execute(DnodeOp::kMax, w(-3), w(2), 0), w(2));
  EXPECT_EQ(alu_execute(DnodeOp::kCmpeq, w(4), w(4), 0), w(1));
  EXPECT_EQ(alu_execute(DnodeOp::kCmpeq, w(4), w(5), 0), w(0));
  EXPECT_EQ(alu_execute(DnodeOp::kCmplt, w(-1), w(0), 0), w(1));
  EXPECT_EQ(alu_execute(DnodeOp::kSelect, w(1), w(10), w(20)), w(10));
  EXPECT_EQ(alu_execute(DnodeOp::kSelect, w(0), w(10), w(20)), w(20));
}

// Algebraic property sweep over random operands.
class AluProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AluProperty, AlgebraicIdentities) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const Word a = rng.next_word();
    const Word b = rng.next_word();
    const Word c = rng.next_word();
    // Commutativity.
    EXPECT_EQ(alu_execute(DnodeOp::kAdd, a, b, 0),
              alu_execute(DnodeOp::kAdd, b, a, 0));
    EXPECT_EQ(alu_execute(DnodeOp::kMul, a, b, 0),
              alu_execute(DnodeOp::kMul, b, a, 0));
    EXPECT_EQ(alu_execute(DnodeOp::kAbsdiff, a, b, 0),
              alu_execute(DnodeOp::kAbsdiff, b, a, 0));
    // MAC decomposes into MUL + ADD.
    EXPECT_EQ(alu_execute(DnodeOp::kMac, a, b, c),
              alu_execute(DnodeOp::kAdd,
                          alu_execute(DnodeOp::kMul, a, b, 0), c, 0));
    // MSU is C - A*B.
    EXPECT_EQ(alu_execute(DnodeOp::kMsu, a, b, c),
              alu_execute(DnodeOp::kSub, c,
                          alu_execute(DnodeOp::kMul, a, b, 0), 0));
    // SUB is anti-commutative via RSUB.
    EXPECT_EQ(alu_execute(DnodeOp::kSub, a, b, 0),
              alu_execute(DnodeOp::kRsub, b, a, 0));
    // min + max partition the pair.
    const auto mn = as_signed(alu_execute(DnodeOp::kMin, a, b, 0));
    const auto mx = as_signed(alu_execute(DnodeOp::kMax, a, b, 0));
    EXPECT_EQ(mn + mx, as_signed(a) + as_signed(b));
    // Saturating results never exceed the signed range and agree with
    // wide arithmetic clamped.
    const std::int64_t wide = static_cast<std::int64_t>(as_signed(a)) +
                              as_signed(b);
    EXPECT_EQ(alu_execute(DnodeOp::kAdds, a, b, 0),
              to_word_saturated(wide));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// The GEMM lowering's correctness rests on one ALU property: because
// mod-2^16 truncation is a ring homomorphism from int64, a chain of
// per-step-wrapped MACs equals the exact wide dot product truncated
// once at the end.  Randomized differential check of that identity,
// plus the narrow-int readback applied to the wrapped accumulator
// against a readback computed straight from the wide value.
TEST(Alu, MacChainMatchesWideDotProductTruncatedOnce) {
  Rng rng(0xD07ull);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = 1 + rng.next_below(24);
    Word acc = 0;
    std::int64_t wide = 0;
    for (std::size_t i = 0; i < len; ++i) {
      const Word a = rng.next_word();
      const Word b = rng.next_word();
      acc = alu_execute(DnodeOp::kMac, a, b, acc);
      wide += static_cast<std::int64_t>(as_signed(a)) * as_signed(b);
    }
    ASSERT_EQ(acc, to_word(wide)) << "iteration " << iter;

    // The readback sees only the wrapped 16-bit accumulator, so the
    // narrowed result must equal narrowing the truncated wide value.
    const unsigned shift = static_cast<unsigned>(rng.next_below(8));
    for (const tile::Dtype dtype :
         {tile::Dtype::kInt8, tile::Dtype::kInt16}) {
      ASSERT_EQ(tile::narrow_readback(acc, shift, dtype),
                tile::narrow_readback(to_word(wide), shift, dtype));
    }
  }
}

}  // namespace
}  // namespace sring
