// The src/tile/ subsystem: rounding-saturating narrow-int readback
// (randomized differential vs an independent scalar model), scalar
// GEMM reference vs naive wrapped arithmetic, scratchpad LRU +
// counters, planner reuse prediction == observed scratchpad
// behaviour, tiled execution bit-exact against the reference across
// shapes/dtypes/mappings/shifts (including ragged edges), worker-count
// determinism, and im2col conv2d.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "rt/runtime.hpp"
#include "tile/gemm_ref.hpp"
#include "tile/gemm_runner.hpp"
#include "tile/scratchpad.hpp"
#include "tile/tile_plan.hpp"

namespace sring::tile {
namespace {

constexpr RingGeometry kGeom{8, 2, 16};

rt::Runtime make_runtime(std::size_t workers) {
  rt::RuntimeConfig cfg;
  cfg.workers = workers;
  return rt::Runtime(cfg);
}

GemmResult run_local(const GemmSpec& spec, std::span<const Word> a,
                     std::span<const Word> b, std::size_t workers = 1,
                     std::size_t scratch_tiles = 128) {
  rt::RuntimeConfig rcfg;
  rcfg.workers = workers;
  rt::Runtime rt(rcfg);
  GemmRunConfig cfg;
  cfg.geometry = kGeom;
  cfg.scratch_tiles = scratch_tiles;
  return run_gemm(rt, cfg, spec, a, b);
}

// ---------------------------------------------------------------------------
// Rounding-saturating readback

/// Independent model of the documented contract: signed value, round
/// half toward +inf, arithmetic shift, clamp.  Written with explicit
/// division instead of shifts so a shift-semantics bug in the
/// implementation cannot hide here.
std::int32_t narrow_model(std::int32_t v, unsigned shift,
                          std::int32_t lo, std::int32_t hi) {
  std::int64_t x = v;
  if (shift > 0) {
    x += std::int64_t{1} << (shift - 1);
    // Arithmetic right shift == floor division by 2^shift.
    const std::int64_t d = std::int64_t{1} << shift;
    x = x >= 0 ? x / d : -((-x + d - 1) / d);
  }
  if (x < lo) return lo;
  if (x > hi) return hi;
  return static_cast<std::int32_t>(x);
}

TEST(NarrowReadback, RandomizedDifferentialAgainstScalarModel) {
  Rng rng(0x7113E5ull);
  for (int i = 0; i < 200000; ++i) {
    const Word acc = rng.next_word();
    const unsigned shift =
        static_cast<unsigned>(rng.next_below(kMaxReadbackShift + 1));
    const Dtype dtype = rng.next_below(2) == 0 ? Dtype::kInt8
                                               : Dtype::kInt16;
    const Word got = narrow_readback(acc, shift, dtype);
    const std::int32_t want = narrow_model(
        as_signed(acc), shift, dtype_min(dtype), dtype_max(dtype));
    ASSERT_EQ(as_signed(got), want)
        << "acc=" << as_signed(acc) << " shift=" << shift
        << " dtype=" << dtype_name(dtype);
  }
}

TEST(NarrowReadback, PinnedCases) {
  // shift 0: pure saturation into the dtype range.
  EXPECT_EQ(as_signed(narrow_readback(to_word(130), 0, Dtype::kInt8)), 127);
  EXPECT_EQ(as_signed(narrow_readback(to_word(-129), 0, Dtype::kInt8)),
            -128);
  EXPECT_EQ(as_signed(narrow_readback(to_word(-129), 0, Dtype::kInt16)),
            -129);
  // Round half toward +inf: 5 >> 1 with rounding = 3; -5 >> 1 = -2.
  EXPECT_EQ(as_signed(narrow_readback(to_word(5), 1, Dtype::kInt8)), 3);
  EXPECT_EQ(as_signed(narrow_readback(to_word(-5), 1, Dtype::kInt8)), -2);
  EXPECT_THROW(narrow_readback(0, 16, Dtype::kInt8), SimError);
}

// ---------------------------------------------------------------------------
// Scalar reference

TEST(GemmReference, MatchesNaiveWrappedArithmetic) {
  GemmSpec spec;
  spec.m = 5;
  spec.k = 11;
  spec.n = 7;
  spec.dtype = Dtype::kInt16;
  spec.shift = 3;
  const auto a = random_operand(spec.m * spec.k, spec.dtype, 11);
  const auto b = random_operand(spec.k * spec.n, spec.dtype, 22);
  const auto c = gemm_reference(spec, a, b);
  ASSERT_EQ(c.size(), spec.m * spec.n);
  // Per-step wrapping (the ring's MAC) must equal the reference's
  // one-truncation-at-the-end form.
  for (std::size_t i = 0; i < spec.m; ++i) {
    for (std::size_t j = 0; j < spec.n; ++j) {
      Word acc = 0;
      for (std::size_t q = 0; q < spec.k; ++q) {
        acc = to_word(std::int64_t{as_signed(a[i * spec.k + q])} *
                          as_signed(b[q * spec.n + j]) +
                      as_signed(acc));
      }
      EXPECT_EQ(c[i * spec.n + j],
                narrow_readback(acc, spec.shift, spec.dtype));
    }
  }
}

TEST(GemmReference, RejectsMismatchedOperands) {
  GemmSpec spec;  // 8x8x8
  EXPECT_THROW(gemm_reference(spec, std::vector<Word>(63),
                              std::vector<Word>(64)),
               SimError);
  spec.shift = 16;
  EXPECT_THROW(gemm_reference(spec, std::vector<Word>(64),
                              std::vector<Word>(64)),
               SimError);
}

// ---------------------------------------------------------------------------
// Scratchpad

StagedTile tile_of(std::size_t words) {
  StagedTile t;
  t.words.assign(words, 1);
  return t;
}

TEST(Scratchpad, LruEvictionAndCounters) {
  Scratchpad spad(2);
  const TileKey k0{Operand::kA, 0, 0};
  const TileKey k1{Operand::kA, 0, 1};
  const TileKey k2{Operand::kB, 0, 0};

  spad.get_or_fill(k0, [] { return tile_of(4); });  // refill 8 bytes
  spad.get_or_fill(k1, [] { return tile_of(4); });  // refill
  spad.get_or_fill(k0, [] { return tile_of(4); });  // hit (k0 now MRU)
  spad.get_or_fill(k2, [] { return tile_of(4); });  // refill, evicts k1
  EXPECT_TRUE(spad.contains(k0));
  EXPECT_FALSE(spad.contains(k1));
  EXPECT_TRUE(spad.contains(k2));
  EXPECT_EQ(spad.hits(), 1u);
  EXPECT_EQ(spad.refills(), 3u);
  EXPECT_EQ(spad.evictions(), 1u);
  EXPECT_EQ(spad.bytes_filled(), 3u * 8u);
  EXPECT_EQ(spad.bytes_saved(), 8u);
  EXPECT_EQ(spad.resident_tiles(), 2u);

  obs::Registry reg;
  spad.export_metrics(reg);
  EXPECT_EQ(reg.find_counter("tile.scratch.hits")->value(), 1u);
  EXPECT_EQ(reg.find_counter("tile.scratch.bytes_saved")->value(), 8u);
}

TEST(Scratchpad, RetainPinsAgainstEviction) {
  Scratchpad spad(2);
  const TileKey k0{Operand::kA, 0, 0};
  const TileKey k1{Operand::kA, 0, 1};
  const TileKey k2{Operand::kA, 0, 2};
  spad.get_or_fill(k0, [] { return tile_of(4); });
  spad.retain(k0);
  spad.get_or_fill(k1, [] { return tile_of(4); });
  spad.get_or_fill(k2, [] { return tile_of(4); });  // must evict k1, not k0
  EXPECT_TRUE(spad.contains(k0));
  EXPECT_FALSE(spad.contains(k1));
  EXPECT_FALSE(spad.evict(k0)) << "pinned tiles refuse explicit evict";
  spad.release(k0);
  EXPECT_TRUE(spad.evict(k0));
}

// ---------------------------------------------------------------------------
// Planner

TEST(TilePlanner, GridAndStepOrder) {
  GemmSpec spec;
  spec.m = 17;  // 3 row bands (ragged)
  spec.k = 16;  // 2 K-chunks
  spec.n = 20;  // 3 column tiles at tile_n=8 (ragged)
  const TileSchedule os = plan_gemm(spec, 64);
  EXPECT_EQ(os.tiles_m, 3u);
  EXPECT_EQ(os.tiles_k, 2u);
  EXPECT_EQ(os.tiles_n, 3u);
  ASSERT_EQ(os.steps.size(), 18u);
  // OS: K-chunks innermost.
  EXPECT_EQ(os.steps[0], (TileStep{0, 0, 0}));
  EXPECT_EQ(os.steps[1], (TileStep{0, 1, 0}));
  EXPECT_EQ(os.steps[2], (TileStep{0, 0, 1}));

  spec.mapping = Mapping::kWeightStationary;
  const TileSchedule ws = plan_gemm(spec, 64);
  // WS: column tiles innermost — the A page stays loaded.
  EXPECT_EQ(ws.steps[0], (TileStep{0, 0, 0}));
  EXPECT_EQ(ws.steps[1], (TileStep{0, 0, 1}));
  EXPECT_EQ(ws.steps[2], (TileStep{0, 0, 2}));
}

TEST(TilePlanner, PredictionMatchesObservedScratchpad) {
  for (const Mapping mapping :
       {Mapping::kOutputStationary, Mapping::kWeightStationary}) {
    for (const std::size_t capacity : {2ul, 8ul, 64ul}) {
      GemmSpec spec;
      spec.m = 24;
      spec.k = 24;
      spec.n = 24;
      spec.mapping = mapping;
      const auto a = random_operand(spec.m * spec.k, spec.dtype, 5);
      const auto b = random_operand(spec.k * spec.n, spec.dtype, 6);
      const GemmResult res = run_local(spec, a, b, 1, capacity);
      EXPECT_EQ(res.scratch_hits, res.schedule.expected_hits)
          << mapping_name(mapping) << " cap=" << capacity;
      EXPECT_EQ(res.scratch_refills, res.schedule.expected_refills);
      EXPECT_EQ(res.bytes_filled, res.schedule.staged_bytes);
    }
  }
}

TEST(TilePlanner, FullReuseCapacityReaches8x) {
  GemmSpec spec;
  spec.m = 64;
  spec.k = 64;
  spec.n = 64;
  const TileSchedule sched = plan_gemm(spec, 128);
  // 512 steps touch 2 tiles each; 128 distinct tiles staged once.
  EXPECT_EQ(sched.expected_refills, 128u);
  EXPECT_EQ(sched.expected_hits, 2u * 512u - 128u);
  EXPECT_NEAR(sched.reuse_factor, 8.0, 1e-9);
}

TEST(PlanCache, HitsMissesEvictionsAndKeying) {
  PlanCache cache(2);
  GemmSpec spec;
  spec.m = 17;
  spec.k = 16;
  spec.n = 20;

  const auto s1 = cache.get_or_plan(spec, 64);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  // Same (spec, capacity) -> the very same schedule object.
  const auto s2 = cache.get_or_plan(spec, 64);
  EXPECT_EQ(s1.get(), s2.get());
  EXPECT_EQ(cache.hits(), 1u);
  // The cached schedule is what plan_gemm produces.
  const TileSchedule direct = plan_gemm(spec, 64);
  EXPECT_EQ(s1->steps, direct.steps);
  EXPECT_EQ(s1->expected_refills, direct.expected_refills);

  // Scratch capacity is part of the key: the same spec at another
  // capacity predicts different traffic, so it must not alias.
  const auto s3 = cache.get_or_plan(spec, 2);
  EXPECT_NE(s1.get(), s3.get());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Refresh (spec, 64) so (spec, 2) is the LRU entry, then a third
  // key evicts it.
  (void)cache.get_or_plan(spec, 64);
  EXPECT_EQ(cache.hits(), 2u);
  GemmSpec other = spec;
  other.mapping = Mapping::kWeightStationary;
  (void)cache.get_or_plan(other, 64);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.get_or_plan(spec, 64);
  EXPECT_EQ(cache.hits(), 3u);
  (void)cache.get_or_plan(spec, 2);
  EXPECT_EQ(cache.misses(), 4u);

  // An evicted-then-replanned schedule survives through the caller's
  // shared_ptr even while absent from the cache.
  EXPECT_EQ(s3->steps, plan_gemm(spec, 2).steps);

  // Invalid specs throw without polluting the cache.
  GemmSpec bad = spec;
  bad.m = 0;
  EXPECT_THROW((void)cache.get_or_plan(bad, 64), SimError);
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------------
// Tiled execution vs reference

TEST(TiledGemm, BitExactAcrossShapesDtypesMappings) {
  struct Case {
    std::size_t m, k, n, tile_n;
    Dtype dtype;
    unsigned shift;
  };
  const Case cases[] = {
      {8, 8, 8, 8, Dtype::kInt8, 0},
      {16, 24, 16, 8, Dtype::kInt8, 5},
      {17, 9, 13, 8, Dtype::kInt16, 2},   // ragged everywhere
      {8, 8, 20, 16, Dtype::kInt16, 0},   // ragged wide column tile
      {24, 16, 24, 4, Dtype::kInt8, 7},   // narrow column tile
  };
  std::uint64_t seed = 0x6E0ull;
  for (const Case& c : cases) {
    for (const Mapping mapping :
         {Mapping::kOutputStationary, Mapping::kWeightStationary}) {
      GemmSpec spec;
      spec.m = c.m;
      spec.k = c.k;
      spec.n = c.n;
      spec.tile_n = c.tile_n;
      spec.dtype = c.dtype;
      spec.shift = c.shift;
      spec.mapping = mapping;
      const auto a = random_operand(spec.m * spec.k, spec.dtype, ++seed);
      const auto b = random_operand(spec.k * spec.n, spec.dtype, ++seed);
      const GemmResult res = run_local(spec, a, b);
      EXPECT_EQ(res.c, gemm_reference(spec, a, b))
          << c.m << "x" << c.k << "x" << c.n << " tile_n=" << c.tile_n
          << " " << dtype_name(c.dtype) << " shift=" << c.shift << " "
          << mapping_name(mapping);
      EXPECT_EQ(res.jobs, res.schedule.steps.size());
      EXPECT_GT(res.sim_cycles, 0u);
    }
  }
}

TEST(TiledGemm, DeterministicAcrossWorkerCounts) {
  GemmSpec spec;
  spec.m = 24;
  spec.k = 32;
  spec.n = 24;
  spec.shift = 4;
  spec.mapping = Mapping::kWeightStationary;
  const auto a = random_operand(spec.m * spec.k, spec.dtype, 77);
  const auto b = random_operand(spec.k * spec.n, spec.dtype, 78);
  const GemmResult one = run_local(spec, a, b, 1);
  const GemmResult four = run_local(spec, a, b, 4);
  EXPECT_EQ(one.c, four.c);
  EXPECT_EQ(one.sim_cycles, four.sim_cycles);
  EXPECT_EQ(one.scratch_hits, four.scratch_hits);
}

TEST(TiledGemm, TrafficReductionMeetsAcceptanceGate) {
  // The acceptance case: 64x64x64 int8 must cut operand traffic by
  // >= 1.5x vs streaming operands per job (it reaches 8x with the
  // full working set resident).
  GemmSpec spec;
  spec.m = 64;
  spec.k = 64;
  spec.n = 64;
  const auto a = random_operand(spec.m * spec.k, spec.dtype, 101);
  const auto b = random_operand(spec.k * spec.n, spec.dtype, 102);
  const GemmResult res = run_local(spec, a, b, 2, 128);
  EXPECT_EQ(res.c, gemm_reference(spec, a, b));
  EXPECT_GE(res.traffic_reduction, 1.5);
  EXPECT_GT(res.bytes_saved, 0u);
}

// ---------------------------------------------------------------------------
// conv2d via im2col

/// Direct 'valid' convolution with the same wrapped-then-narrowed
/// arithmetic, no im2col.
std::vector<Word> conv_reference(const Conv2dSpec& spec,
                                 std::span<const Word> filters,
                                 std::span<const Word> image) {
  const std::size_t oh = spec.out_h();
  const std::size_t ow = spec.out_w();
  std::vector<Word> out(spec.filters * oh * ow);
  for (std::size_t f = 0; f < spec.filters; ++f) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        std::int64_t sum = 0;
        for (std::size_t fy = 0; fy < spec.kh; ++fy) {
          for (std::size_t fx = 0; fx < spec.kw; ++fx) {
            sum += std::int64_t{as_signed(
                       filters[f * spec.kh * spec.kw + fy * spec.kw +
                               fx])} *
                   as_signed(image[(oy + fy) * spec.in_w + (ox + fx)]);
          }
        }
        out[f * oh * ow + oy * ow + ox] =
            narrow_readback(to_word(sum), spec.shift, spec.dtype);
      }
    }
  }
  return out;
}

TEST(TiledConv2d, Im2colBitExactAgainstDirectConvolution) {
  Conv2dSpec spec;
  spec.in_h = 12;
  spec.in_w = 14;
  spec.kh = 3;
  spec.kw = 3;
  spec.filters = 8;
  spec.dtype = Dtype::kInt8;
  spec.shift = 6;
  const auto filters =
      random_operand(spec.filters * spec.kh * spec.kw, spec.dtype, 31);
  const auto image =
      random_operand(spec.in_h * spec.in_w, spec.dtype, 32);

  rt::Runtime rt = make_runtime(1);
  GemmRunConfig cfg;
  cfg.geometry = kGeom;
  const GemmResult res = run_conv2d(rt, cfg, spec, filters, image);
  EXPECT_EQ(res.c, conv_reference(spec, filters, image));
  // im2col re-reads overlapping patches, so the conv working set
  // must show inter-tile reuse too.
  EXPECT_GT(res.scratch_hits, 0u);
}

}  // namespace
}  // namespace sring::tile
