// The DFG text front end (svc/dfg_text): a parsed file must mean
// exactly what the equivalent builder calls mean (same canonical
// bytes), and every malformed line must be rejected with a precise
// 1-based "dfg:<line>:<col>:" position.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "mapper/dfg.hpp"
#include "svc/dfg_codec.hpp"
#include "svc/dfg_text.hpp"

namespace sring::svc {
namespace {

using mapper::Dfg;
using mapper::DfgOp;
using mapper::NodeId;

/// Expect parse_dfg_text to fail with a message starting with the
/// given "dfg:<line>:<col>:" prefix.
void expect_error_at(const std::string& text, const std::string& prefix) {
  try {
    (void)parse_dfg_text(text);
    FAIL() << "parsed despite expecting '" << prefix << "'";
  } catch (const SimError& e) {
    EXPECT_EQ(std::string(e.what()).rfind(prefix, 0), 0u)
        << "got: " << e.what();
  }
}

TEST(DfgText, ParsesTheDocExampleToTheSameCanonicalBytes) {
  const char* text =
      "# 5-node example from the header comment\n"
      "x    input\n"
      "k    const -7\n"
      "m    mul x k\n"
      "d    delay m 2   # z^-2\n"
      "y    add m d\n"
      "out  output y\n";
  const Dfg parsed = parse_dfg_text(text);

  Dfg built;
  const NodeId x = built.add_input("x");
  const NodeId k = built.add_const(static_cast<Word>(-7));
  const NodeId m = built.add_binary(DfgOp::kMul, x, k);
  const NodeId d = built.add_delay(m, 2);
  const NodeId y = built.add_binary(DfgOp::kAdd, m, d);
  built.mark_output(y, "out");

  EXPECT_EQ(encode_dfg(parsed), encode_dfg(built));
  EXPECT_EQ(dfg_hash(parsed), dfg_hash(built));
}

TEST(DfgText, HexAndDecimalConstantsAndDottedNames) {
  const Dfg dfg = parse_dfg_text(
      "a.in input\n"
      "h    const 0x7fff\n"
      "z    const 65535\n"
      "s    shl a.in h\n"
      "y    xor s z\n"
      "y.out output y\n");
  ASSERT_EQ(dfg.nodes().size(), 5u);
  EXPECT_EQ(dfg.nodes()[1].value, Word{0x7fff});
  EXPECT_EQ(static_cast<std::uint16_t>(dfg.nodes()[2].value), 0xFFFFu);
  ASSERT_EQ(dfg.outputs().size(), 1u);
  EXPECT_EQ(dfg.node(dfg.outputs()[0]).op, DfgOp::kXor);
}

TEST(DfgText, OutputLessFileParsesAndFailsOnlyInValidate) {
  // Matches the service's error path: the parser accepts it, the
  // mapper's own "at least one output" diagnostic fires in validate().
  const Dfg dfg = parse_dfg_text("x input\ny abs x\n");
  EXPECT_THROW(dfg.validate(), SimError);
}

TEST(DfgText, UnknownOpPointsAtTheOpToken) {
  expect_error_at("x input\ny frobnicate x\n", "dfg:2:3:");
}

TEST(DfgText, UnknownOperandPointsAtTheOperandToken) {
  expect_error_at("x input\ny add x ghost\n", "dfg:2:9:");
}

TEST(DfgText, ForwardReferenceIsAnUnknownOperand) {
  // The text format is topological by construction — using a name
  // before its line is the same error as never defining it.
  expect_error_at("y add x x\nx input\n", "dfg:1:7:");
}

TEST(DfgText, DuplicateNamePointsAtTheSecondDefinition) {
  expect_error_at("x input\nx const 1\n", "dfg:2:1:");
}

TEST(DfgText, ArityMismatchReportsCounts) {
  try {
    (void)parse_dfg_text("x input\ny add x\n");
    FAIL();
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("dfg:2:", 0), 0u) << what;
    EXPECT_NE(what.find("expects 2 argument(s), got 1"), std::string::npos)
        << what;
  }
}

TEST(DfgText, ExtraArgumentPointsAtTheFirstExcessToken) {
  expect_error_at("x input\ny abs x x\n", "dfg:2:9:");
}

TEST(DfgText, ConstantRangeIsEnforced) {
  expect_error_at("k const 70000\n", "dfg:1:9:");
  expect_error_at("k const -40000\n", "dfg:1:9:");
  expect_error_at("k const banana\n", "dfg:1:9:");
}

TEST(DfgText, DelayRangeMatchesTheCodecBound) {
  // The parser caps delays exactly where the codec does, so anything
  // it accepts also encodes.
  expect_error_at("x input\nd delay x 0\n", "dfg:2:11:");
  expect_error_at("x input\nd delay x " +
                      std::to_string(kMaxDfgDelay + 1) + "\n",
                  "dfg:2:11:");
  const Dfg ok = parse_dfg_text("x input\nd delay x " +
                                std::to_string(kMaxDfgDelay) +
                                "\no output d\n");
  EXPECT_EQ(ok.nodes()[1].delay, kMaxDfgDelay);
  EXPECT_FALSE(encode_dfg(ok).empty());
}

TEST(DfgText, BadNameAndLoneTokenDiagnostics) {
  expect_error_at("1bad input\n", "dfg:1:1:");
  expect_error_at("x\n", "dfg:1:1:");
}

TEST(DfgText, ColumnsCountLeadingWhitespace) {
  // Two spaces of indent: the name starts at column 3, the bogus op
  // at column 9 (1-based, whitespace included).
  expect_error_at("  x     whoosh\n", "dfg:1:9:");
}

TEST(DfgText, CommentOnlyAndBlankLinesKeepLineNumbers) {
  expect_error_at("# header\n\n   # indented comment\nx oops\n",
                  "dfg:4:3:");
}

}  // namespace
}  // namespace sring::svc
