// Unit tests for the configuration layer (live words + pages).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/config_memory.hpp"

namespace sring {
namespace {

RingGeometry small() { return {4, 2, 8}; }

TEST(RingGeometry, Validation) {
  EXPECT_NO_THROW(small().validate());
  EXPECT_THROW((RingGeometry{0, 2, 8}).validate(), SimError);
  EXPECT_THROW((RingGeometry{33, 2, 8}).validate(), SimError);
  EXPECT_THROW((RingGeometry{4, 17, 8}).validate(), SimError);
  EXPECT_THROW((RingGeometry{4, 2, 0}).validate(), SimError);
  EXPECT_THROW((RingGeometry{4, 2, 17}).validate(), SimError);
  EXPECT_EQ(small().dnode_count(), 8u);
  EXPECT_EQ(small().switch_count(), 4u);
}

TEST(ConfigMemory, StartsZeroed) {
  ConfigMemory cfg(small());
  for (std::size_t d = 0; d < 8; ++d) {
    EXPECT_EQ(cfg.dnode_instr(d).op, DnodeOp::kNop);
    EXPECT_EQ(cfg.dnode_mode(d), DnodeMode::kGlobal);
  }
}

TEST(ConfigMemory, WriteAndReadBack) {
  ConfigMemory cfg(small());
  DnodeInstr instr;
  instr.op = DnodeOp::kAdd;
  instr.src_a = DnodeSrc::kIn1;
  instr.src_b = DnodeSrc::kIn2;
  instr.dst = DnodeDst::kR0;
  cfg.write_dnode_instr(3, instr.encode());
  EXPECT_EQ(cfg.dnode_instr(3), instr);

  cfg.write_dnode_mode(3, DnodeMode::kLocal);
  EXPECT_EQ(cfg.dnode_mode(3), DnodeMode::kLocal);

  SwitchRoute r;
  r.in1 = PortRoute::prev(1);
  cfg.write_switch_route(2, 0, r.encode());
  EXPECT_EQ(cfg.switch_route(2, 0), r);
}

TEST(ConfigMemory, RejectsBadIndicesAndWords) {
  ConfigMemory cfg(small());
  EXPECT_THROW(cfg.write_dnode_instr(8, 0), SimError);
  EXPECT_THROW(cfg.write_switch_route(4, 0, 0), SimError);
  EXPECT_THROW(cfg.write_switch_route(0, 2, 0), SimError);
  // Malformed microinstruction must be rejected eagerly.
  EXPECT_THROW(cfg.write_dnode_instr(0, 63), SimError);
}

TEST(ConfigMemory, PagesSwapAtomically) {
  ConfigMemory cfg(small());
  ConfigPage page = ConfigPage::zeroed(small());
  DnodeInstr instr;
  instr.op = DnodeOp::kMul;
  instr.src_a = DnodeSrc::kIn1;
  instr.src_b = DnodeSrc::kIn2;
  instr.out_en = true;
  page.dnode_instr[5] = instr.encode();
  page.dnode_mode[1] = static_cast<std::uint8_t>(DnodeMode::kLocal);
  const std::size_t idx = cfg.add_page(page);
  EXPECT_EQ(idx, 0u);

  cfg.apply_page(0);
  EXPECT_EQ(cfg.dnode_instr(5), instr);
  EXPECT_EQ(cfg.dnode_mode(1), DnodeMode::kLocal);
  EXPECT_EQ(cfg.dnode_instr(0).op, DnodeOp::kNop);
  EXPECT_THROW(cfg.apply_page(1), SimError);
}

TEST(ConfigMemory, PageShapeValidated) {
  ConfigMemory cfg(small());
  ConfigPage page = ConfigPage::zeroed({2, 2, 8});
  EXPECT_THROW(cfg.add_page(page), SimError);
  ConfigPage bad_mode = ConfigPage::zeroed(small());
  bad_mode.dnode_mode[0] = 2;
  EXPECT_THROW(cfg.add_page(bad_mode), SimError);
}

TEST(ConfigMemory, CountsWrites) {
  ConfigMemory cfg(small());
  EXPECT_EQ(cfg.words_written(), 0u);
  cfg.write_dnode_mode(0, DnodeMode::kLocal);
  EXPECT_EQ(cfg.words_written(), 1u);
  cfg.add_page(ConfigPage::zeroed(small()));
  cfg.apply_page(0);
  // A page swap rewrites every configuration word.
  EXPECT_EQ(cfg.words_written(), 1u + 8 + 8 + 8);
}

}  // namespace
}  // namespace sring
