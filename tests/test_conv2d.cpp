// Tests for the compiler-composed 3x3 convolution.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dsp/conv2d.hpp"
#include "kernels/conv2d_kernel.hpp"

namespace sring::kernels {
namespace {

RingGeometry ring64() { return {8, 8, 16}; }

TEST(Conv2dGolden, IdentityKernel) {
  dsp::Kernel3x3 ident{};
  ident[1][1] = 1;
  const Image img = Image::synthetic(16, 12, 3);
  EXPECT_EQ(dsp::conv2d_3x3_reference(img, ident), img);
}

TEST(Conv2dGolden, SmoothOfConstantScalesBySixteen) {
  Image img(8, 8, 10);
  const Image out = dsp::conv2d_3x3_reference(img, dsp::kernel_smooth());
  for (const Word w : out.pixels()) {
    EXPECT_EQ(w, to_word(160));
  }
}

TEST(Conv2dGolden, SobelOfConstantIsZero) {
  Image img(8, 8, 77);
  const Image out = dsp::conv2d_3x3_reference(img, dsp::kernel_sobel_x());
  for (const Word w : out.pixels()) {
    EXPECT_EQ(w, 0u);
  }
}

TEST(Conv2dDfg, SkipsDeadTapsAndFuses) {
  // Sharpen has four zero taps; the graph carries only five terms, and
  // MAC fusion keeps the operator count small.
  const auto dfg = make_conv3x3_dfg(dsp::kernel_sharpen());
  const auto mapped = mapper::map_dfg(dfg, ring64());
  EXPECT_LE(mapped.dnodes_used, 3u + 8u) << mapper::mapping_report(mapped);
}

class Conv2dSweep : public ::testing::TestWithParam<int> {};

TEST_P(Conv2dSweep, MatchesGoldenOnAllKernels) {
  const Image img =
      Image::synthetic(12, 10, static_cast<std::uint64_t>(GetParam()));
  const dsp::Kernel3x3 kernels[] = {
      dsp::kernel_smooth(), dsp::kernel_sharpen(), dsp::kernel_sobel_x()};
  for (const auto& k : kernels) {
    const auto result = run_conv2d_3x3(ring64(), img, k);
    EXPECT_EQ(result.output, dsp::conv2d_3x3_reference(img, k));
    EXPECT_GT(result.dnodes_used, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Conv2dSweep, ::testing::Values(1, 2, 3));

TEST(Conv2d, RandomKernelsBitExact) {
  Rng rng(99);
  const Image img = Image::synthetic(16, 8, 5);
  for (int trial = 0; trial < 5; ++trial) {
    dsp::Kernel3x3 k;
    for (auto& row : k) {
      for (auto& v : row) v = rng.next_word_in(-4, 4);
    }
    bool all_zero = true;
    for (const auto& row : k) {
      for (const auto v : row) all_zero = all_zero && v == 0;
    }
    if (all_zero) k[1][1] = 1;
    const auto result = run_conv2d_3x3(ring64(), img, k);
    EXPECT_EQ(result.output, dsp::conv2d_3x3_reference(img, k))
        << "trial " << trial;
  }
}

TEST(Conv2d, ThroughputIsAboutOnePixelPerCycle) {
  const Image img = Image::synthetic(64, 16, 9);
  const auto result = run_conv2d_3x3(ring64(), img, dsp::kernel_smooth());
  // Per row: width+2 stream samples plus pipeline flush.
  EXPECT_LT(result.cycles_per_pixel, 1.5);
}

TEST(Conv2d, AllZeroKernelRejected) {
  EXPECT_THROW(make_conv3x3_dfg(dsp::Kernel3x3{}), SimError);
}

}  // namespace
}  // namespace sring::kernels
