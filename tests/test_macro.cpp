// Tests for the assembler's macro preprocessor.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "asm/macro.hpp"
#include "asm/lexer.hpp"
#include "common/error.hpp"
#include "sim/system.hpp"

namespace sring {
namespace {

TEST(Macro, SimpleSubstitution) {
  const auto prog = assemble(R"(
.ring 2 1
.macro load REG VALUE
    ldi REG, VALUE
.endm
.controller
    load r1 42
    load r2 -7
    halt
)");
  ASSERT_EQ(prog.controller_code.size(), 3u);
  const auto i0 = RiscInstr::decode(prog.controller_code[0]);
  EXPECT_EQ(i0.op, RiscOp::kLdi);
  EXPECT_EQ(i0.rd, 1);
  EXPECT_EQ(i0.imm, 42);
  const auto i1 = RiscInstr::decode(prog.controller_code[1]);
  EXPECT_EQ(i1.rd, 2);
  EXPECT_EQ(i1.imm, -7);
}

TEST(Macro, ParametersInCoordinatesAndImmediates) {
  // The fir3 tap written once, stamped three times.
  const auto prog = assemble(R"(
.ring 8 2 16
.macro tap LAYER COEF
    dnode  LAYER.0 { pass none, in1 out }
    switch LAYER.0 in1=fb(LAYER,0,0)
    dnode  LAYER.1 { mac none, in1, imm(COEF), in2 out }
    switch LAYER.1 in1=prev0 in2=prev1
.endm

.controller
    page filter
    halt

.page filter
    dnode  0.0 { pass none, in1 out }
    switch 0.0 in1=host
    dnode  0.1 { pass none, zero out }
    tap 1 2
    tap 2 -3
    tap 3 5
    ; re-state the final tap with the host flag to stream y
    dnode  3.1 { mac none, in1, imm(5), in2 out host }
)");
  // Spot-check the stamped taps.
  const auto i21 =
      DnodeInstr::decode(prog.pages[0].dnode_instr[2 * 2 + 1]);
  EXPECT_EQ(i21.op, DnodeOp::kMac);
  EXPECT_EQ(as_signed(i21.imm), -3);
  const auto r30 = SwitchRoute::decode(prog.pages[0].switch_route[3 * 2]);
  EXPECT_EQ(r30.in1, PortRoute::feedback({3, 0, 0}));

  // And it actually filters: run it against the golden FIR.
  System sys({prog.geometry});
  sys.load(prog);
  std::vector<Word> x = {1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 0};
  sys.host().send(x);
  sys.run_until_outputs(11, 1000);
  const auto raw = sys.host().take_received();
  // y[4] for x=1..8 with {2,-3,5}: 2*5 - 3*4 + 5*3 = 13.
  EXPECT_EQ(as_signed(raw[4 + 3]), 13);
}

TEST(Macro, NestedInvocation) {
  const auto prog = assemble(R"(
.ring 2 1
.macro load REG VALUE
    ldi REG, VALUE
.endm
.macro loadpair A B VALUE
    load A VALUE
    load B VALUE
.endm
.controller
    loadpair r3 r4 9
    halt
)");
  ASSERT_EQ(prog.controller_code.size(), 3u);
  EXPECT_EQ(RiscInstr::decode(prog.controller_code[0]).rd, 3);
  EXPECT_EQ(RiscInstr::decode(prog.controller_code[1]).rd, 4);
  EXPECT_EQ(RiscInstr::decode(prog.controller_code[1]).imm, 9);
}

TEST(Macro, Diagnostics) {
  // Unterminated.
  EXPECT_THROW(assemble(".ring 2 1\n.macro m A\n ldi r1, A\n"), AsmError);
  // Arity mismatch.
  EXPECT_THROW(assemble(R"(
.ring 2 1
.macro m A B
    ldi A, B
.endm
.controller
    m r1
    halt
)"),
               AsmError);
  // Stray .endm.
  EXPECT_THROW(assemble(".ring 2 1\n.endm\n"), AsmError);
  // Duplicate macro.
  EXPECT_THROW(assemble(
                   ".ring 2 1\n.macro m\n.endm\n.macro m\n.endm\n"),
               AsmError);
  // Too many arguments.
  EXPECT_THROW(assemble(R"(
.ring 2 1
.macro one A
    ldi A, 0
.endm
.controller
    one r1 r2
    halt
)"),
               AsmError);
}

TEST(Macro, ExpansionIsTokenExact) {
  const auto raw = expand_macros(lex(
      ".macro m X\nadd X, X, X\n.endm\nm r5\n"));
  // Ignore statement separators: add r5 , r5 , r5 END.
  std::vector<Token> expanded;
  for (const auto& t : raw) {
    if (t.kind != TokenKind::kNewline) expanded.push_back(t);
  }
  ASSERT_GE(expanded.size(), 6u);
  EXPECT_EQ(expanded[0].text, "add");
  EXPECT_EQ(expanded[1].text, "r5");
  EXPECT_EQ(expanded[3].text, "r5");
  EXPECT_EQ(expanded[5].text, "r5");
}

}  // namespace
}  // namespace sring
