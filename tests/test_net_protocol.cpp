// Wire-protocol unit tests: byte-level framing, CRC, codec round
// trips, and the malformed-input taxonomy (truncated, oversized, bad
// magic/version, CRC mismatch) — all without a socket.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/image.hpp"
#include "net/protocol.hpp"
#include "rt/runtime.hpp"

namespace sring::net {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  return std::vector<std::uint8_t>(s, s + std::strlen(s));
}

TEST(Crc32, MatchesIeeeCheckValue) {
  const auto data = bytes_of("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0u);
}

TEST(Framing, RoundTripsAllMessageTypes) {
  for (const MsgType type :
       {MsgType::kPing, MsgType::kSubmitJob, MsgType::kDrainAck}) {
    const auto payload = bytes_of("some payload");
    std::vector<std::uint8_t> wire;
    append_frame(wire, type, payload);
    EXPECT_EQ(wire.size(),
              kHeaderBytes + payload.size() + kTrailerBytes);

    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(try_parse_frame(wire, kDefaultMaxFrameBytes, frame, consumed),
              ParseStatus::kFrame);
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(Framing, TwoFramesParseBackToBack) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kPing, encode_ping(1));
  append_frame(wire, MsgType::kDrain, {});

  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(try_parse_frame(wire, kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kFrame);
  EXPECT_EQ(frame.type, MsgType::kPing);
  wire.erase(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(consumed));
  ASSERT_EQ(try_parse_frame(wire, kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kFrame);
  EXPECT_EQ(frame.type, MsgType::kDrain);
  EXPECT_EQ(consumed, wire.size());
}

TEST(Framing, TruncatedPrefixWantsMoreBytes) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kPing, encode_ping(42));
  Frame frame;
  std::size_t consumed = 0;
  // Every strict prefix is kNeedMore — a partial frame never errors,
  // never parses.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(wire.data(), cut);
    EXPECT_EQ(try_parse_frame(prefix, kDefaultMaxFrameBytes, frame, consumed),
              ParseStatus::kNeedMore)
        << "at prefix length " << cut;
  }
}

TEST(Framing, EmptyBufferWantsMoreBytes) {
  Frame frame;
  std::size_t consumed = 1;
  // A default span has a null data(); the parser must not hand it to
  // memcmp (UB even at length 0 — UBSan flags it).
  EXPECT_EQ(try_parse_frame(std::span<const std::uint8_t>{},
                            kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kNeedMore);
  EXPECT_EQ(consumed, 0u);
}

TEST(Framing, BadMagicRejectsOnFirstDivergentByte) {
  Frame frame;
  std::size_t consumed = 0;
  const auto garbage = bytes_of("GET / HTTP/1.1\r\n");
  EXPECT_EQ(try_parse_frame(garbage, kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kBadMagic);
  // Even a single wrong byte is enough.
  const std::vector<std::uint8_t> one = {'X'};
  EXPECT_EQ(try_parse_frame(one, kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kBadMagic);
}

TEST(Framing, BadVersionRejected) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kPing, encode_ping(7));
  wire[4] = 0xFE;  // version low byte
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(try_parse_frame(wire, kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kBadVersion);
}

TEST(Framing, OversizedFrameRejectedFromHeaderAlone) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kSubmitJob, bytes_of("xx"));
  wire[8] = 0xFF;  // length field -> huge
  wire[9] = 0xFF;
  wire[10] = 0xFF;
  wire[11] = 0x7F;
  Frame frame;
  std::size_t consumed = 0;
  // The limit applies before any payload bytes arrive.
  EXPECT_EQ(try_parse_frame(
                std::span<const std::uint8_t>(wire.data(), kHeaderBytes),
                kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kTooLarge);
}

TEST(Framing, CrcMismatchRejected) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kPing, encode_ping(99));
  wire[kHeaderBytes] ^= 0x01;  // flip one payload bit
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(try_parse_frame(wire, kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kBadCrc);
}

JobRequest sample_request(KernelId kernel) {
  JobRequest req;
  req.kernel = kernel;
  req.geometry = {8, 2, 16};
  req.tag = 0xC0FFEE;
  switch (kernel) {
    case KernelId::kFir:
      req.fir_coeffs = {1, static_cast<Word>(-2), 3};
      req.input = {10, 20, 30, 40};
      break;
    case KernelId::kMotionEstimation:
      req.me_ref = Image::synthetic(16, 16, 3);
      req.me_cand = Image::shifted(req.me_ref, 1, 0, 5, 2);
      req.me_rx = 4;
      req.me_ry = 4;
      req.me_range = 1;
      break;
    case KernelId::kDwt53:
      req.input = {1, 2, 3, 4, 5, 6, 7, 8};
      break;
    case KernelId::kMatvec8:
      req.matvec_m.assign(64, 7);
      req.input.assign(16, 3);
      break;
  }
  return req;
}

TEST(Codec, JobRequestRoundTripsForEveryKernel) {
  for (const KernelId k :
       {KernelId::kFir, KernelId::kMotionEstimation, KernelId::kDwt53,
        KernelId::kMatvec8}) {
    const JobRequest req = sample_request(k);
    const JobRequest back = decode_job_request(encode_job_request(req));
    EXPECT_EQ(back, req);
  }
}

TEST(Codec, JobResultRoundTrips) {
  JobResultMsg msg;
  msg.tag = 7;
  msg.outputs = {1, 0xFFFF, 3};
  msg.sim_cycles = 123456789;
  msg.worker = 3;
  msg.reused_system = 1;
  msg.counters = {{"sim.cycles", 123456789}, {"sim.dnode_ops", 42}};
  EXPECT_EQ(decode_job_result(encode_job_result(msg)), msg);
}

TEST(Codec, ErrorAndServerInfoAndPingRoundTrip) {
  ErrorMsg err;
  err.tag = 9;
  err.code = ErrorCode::kBusy;
  err.message = "job queue is full — resubmit later";
  EXPECT_EQ(decode_error(encode_error(err)), err);

  ServerInfoMsg info;
  info.workers = 8;
  info.queue_capacity = 64;
  info.max_frame_bytes = 1 << 20;
  info.jobs_completed = 12345;
  info.server = "sring-serve";
  EXPECT_EQ(decode_server_info(encode_server_info(info)), info);

  EXPECT_EQ(decode_ping(encode_ping(0xDEADBEEFCAFEull)), 0xDEADBEEFCAFEull);
}

TEST(Codec, TruncatedPayloadThrowsTyped) {
  auto payload = encode_job_request(sample_request(KernelId::kFir));
  payload.resize(payload.size() / 2);
  EXPECT_THROW(decode_job_request(payload), ProtocolError);
}

TEST(Codec, TrailingBytesThrowTyped) {
  auto payload = encode_ping(5);
  payload.push_back(0);
  EXPECT_THROW(decode_ping(payload), ProtocolError);
}

TEST(Codec, UnknownKernelIdThrowsTyped) {
  auto payload = encode_job_request(sample_request(KernelId::kDwt53));
  payload[4] = 0x77;  // kernel id low byte (after u32 tag)
  payload[5] = 0x00;
  EXPECT_THROW(decode_job_request(payload), ProtocolError);
}

TEST(Codec, ImagePixelCountMismatchThrowsTyped) {
  JobRequest req = sample_request(KernelId::kMotionEstimation);
  auto payload = encode_job_request(req);
  // Shrink the declared ref width: pixels no longer match w*h.  The
  // width sits after tag u32 + kernel u16 + geometry u16*3.
  payload[12] = 0x08;
  EXPECT_THROW(decode_job_request(payload), ProtocolError);
}

TEST(JobMapping, MatchesKernelDescriptors) {
  const JobRequest req = sample_request(KernelId::kFir);
  const rt::Job job = to_rt_job(req);
  EXPECT_EQ(job.name, "fir.spatial");
  EXPECT_EQ(job.take_words, req.input.size());
  EXPECT_FALSE(job.program_key.empty());

  JobRequest bad = sample_request(KernelId::kMatvec8);
  bad.matvec_m.resize(63);
  EXPECT_THROW(to_rt_job(bad), SimError);
}

// A tiny valid frame could otherwise declare a u16 search range whose
// (2*range+1)^2 displacement set allocates ~100 GB on the poll thread;
// the cap turns that into a typed Error{kBadRequest} before any
// allocation happens.
TEST(JobMapping, MotionRangeAboveCapThrowsBeforeAllocating) {
  JobRequest bomb = sample_request(KernelId::kMotionEstimation);
  bomb.me_range = 0xFFFF;
  EXPECT_THROW(to_rt_job(bomb), SimError);
  bomb.me_range = kMaxMotionRange + 1;
  EXPECT_THROW(to_rt_job(bomb), SimError);
}

// --- protocol v2: version negotiation, trace ids, stats exposition ---

TEST(Versioning, ParserAcceptsEverySupportedVersionAndReportsIt) {
  for (const std::uint16_t v : {kMinProtocolVersion, kProtocolVersion}) {
    std::vector<std::uint8_t> wire;
    append_frame(wire, MsgType::kPing, encode_ping(7), v);
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(try_parse_frame(wire, kDefaultMaxFrameBytes, frame, consumed),
              ParseStatus::kFrame)
        << "version " << v;
    EXPECT_EQ(frame.version, v);
  }

  // Below the floor and above the ceiling both reject.
  for (const std::uint16_t v :
       {std::uint16_t{0},
        static_cast<std::uint16_t>(kProtocolVersion + 1)}) {
    std::vector<std::uint8_t> wire;
    append_frame(wire, MsgType::kPing, encode_ping(7));
    wire[4] = static_cast<std::uint8_t>(v & 0xFF);
    wire[5] = static_cast<std::uint8_t>(v >> 8);
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(try_parse_frame(wire, kDefaultMaxFrameBytes, frame, consumed),
              ParseStatus::kBadVersion)
        << "version " << v;
  }
}

TEST(Versioning, JobRequestCarriesTraceIdOnlyInV2) {
  JobRequest req = sample_request(KernelId::kFir);
  req.trace_id = 0x1122334455667788ull;

  const JobRequest v2 = decode_job_request(encode_job_request(req), 2);
  EXPECT_EQ(v2, req);
  EXPECT_EQ(v2.trace_id, 0x1122334455667788ull);

  // The v1 byte layout has no trace tail: exactly 8 bytes shorter,
  // and a v1 decode of it yields trace_id 0 with everything else
  // intact — old clients round-trip bit-identically.
  const auto v2_bytes = encode_job_request(req, 2);
  const auto v1_bytes = encode_job_request(req, 1);
  EXPECT_EQ(v1_bytes.size() + 8, v2_bytes.size());
  EXPECT_TRUE(std::equal(v1_bytes.begin(), v1_bytes.end(),
                         v2_bytes.begin()));
  const JobRequest v1 = decode_job_request(v1_bytes, 1);
  EXPECT_EQ(v1.trace_id, 0u);
  JobRequest expect_v1 = req;
  expect_v1.trace_id = 0;
  EXPECT_EQ(v1, expect_v1);
}

TEST(Versioning, JobResultTelemetryTailIsV2Only) {
  JobResultMsg msg;
  msg.tag = 11;
  msg.outputs = {5, 6};
  msg.sim_cycles = 999;
  msg.counters = {{"sim.cycles", 999}};
  msg.trace_id = 0xFACE;
  msg.queue_wait_us = 17;
  msg.execute_us = 230;
  msg.total_us = 260;

  EXPECT_EQ(decode_job_result(encode_job_result(msg), 2), msg);

  const JobResultMsg v1 =
      decode_job_result(encode_job_result(msg, 1), 1);
  EXPECT_EQ(v1.tag, msg.tag);
  EXPECT_EQ(v1.outputs, msg.outputs);
  EXPECT_EQ(v1.trace_id, 0u);
  EXPECT_EQ(v1.queue_wait_us, 0u);
  EXPECT_EQ(v1.total_us, 0u);
}

TEST(Versioning, V1PayloadWithV2TailIsRejected) {
  // A v1 frame must not smuggle the v2 tail: strict end-of-payload
  // checking catches the 8 extra bytes.
  JobRequest req = sample_request(KernelId::kDwt53);
  req.trace_id = 1;
  const auto v2_bytes = encode_job_request(req, 2);
  EXPECT_THROW(decode_job_request(v2_bytes, 1), ProtocolError);
}

obs::SpanRecord sample_span(std::uint64_t trace) {
  obs::SpanRecord rec;
  rec.trace_id = trace;
  rec.name = "fir.spatial";
  rec.ok = false;
  rec.error = "ring stalled";
  rec.worker = 3;
  rec.sim_cycles = 4096;
  rec.plan_hits = 2;
  rec.superstep_cycles = 4000;
  rec.start_offset_us = 123456;
  rec.queue_wait_us = 17;
  rec.arm_us = 4;
  rec.execute_us = 800;
  rec.serialize_us = 9;
  rec.e2e_us = 830;
  rec.slow = true;
  return rec;
}

TEST(Codec, GetStatsRoundTripsFlags) {
  EXPECT_EQ(decode_get_stats(encode_get_stats(0)), 0u);
  EXPECT_EQ(decode_get_stats(encode_get_stats(kStatsIncludeFlight)),
            kStatsIncludeFlight);
}

TEST(Codec, StatsReplyRoundTripsEverything) {
  StatsReplyMsg msg;
  msg.uptime_us = 5'000'000;
  msg.workers = 4;
  msg.queue_depth = 3;
  msg.queue_capacity = 64;
  msg.worker_utilization = 0.625;
  msg.counters = {{"net.jobs.completed", 120}, {"rt.sim_cycles", 1 << 20}};
  StatsQuantileMsg q;
  q.name = "net.latency.e2e_us";
  q.count = 120;
  q.mean_us = 840.5;
  q.p50_us = 700.0;
  q.p90_us = 1900.0;
  q.p99_us = 4700.0;
  q.max_us = 5123;
  msg.latencies = {q};
  msg.rates = {{"net.jobs.completed", 24.5}, {"net.bytes.in", 81920.0}};
  msg.flight = {sample_span(1), sample_span(2)};

  EXPECT_EQ(decode_stats_reply(encode_stats_reply(msg)), msg);

  // Empty lists survive too (a just-started server).
  EXPECT_EQ(decode_stats_reply(encode_stats_reply(StatsReplyMsg{})),
            StatsReplyMsg{});
}

TEST(Codec, StatsReplyJsonCarriesTheSameFields) {
  StatsReplyMsg msg;
  msg.uptime_us = 1000;
  msg.workers = 2;
  msg.counters = {{"net.jobs.completed", 7}};
  msg.rates = {{"net.jobs.completed", 3.5}};
  msg.flight = {sample_span(42)};
  const obs::JsonValue j = msg.to_json();
  EXPECT_EQ(j.find("uptime_us")->as_uint(), 1000u);
  EXPECT_EQ(j.find("counters")->find("net.jobs.completed")->as_uint(), 7u);
  EXPECT_NE(j.find("rates")->find("net.jobs.completed"), nullptr);
  ASSERT_EQ(j.find("flight")->items().size(), 1u);
  EXPECT_EQ(j.find("flight")->items()[0].find("trace_id")->as_uint(), 42u);
}

TEST(JobMapping, TraceIdReachesTheRtJob) {
  JobRequest req = sample_request(KernelId::kFir);
  req.trace_id = 0xBEEF;
  EXPECT_EQ(to_rt_job(req).trace_id, 0xBEEF);
}

// --- protocol v3: DFG compile service messages ---

SubmitDfgMsg sample_submit_dfg() {
  SubmitDfgMsg msg;
  msg.tag = 41;
  msg.geometry = RingGeometry{8, 2, 16};
  msg.dfg = {'S', 'D', 'F', 'G', 1, 0, 9, 8, 7};  // opaque at this layer
  msg.trace_id = 0xA1B2C3D4E5F60718ull;
  return msg;
}

TEST(Codec, SubmitDfgRoundTrips) {
  const SubmitDfgMsg msg = sample_submit_dfg();
  EXPECT_EQ(decode_submit_dfg(encode_submit_dfg(msg)), msg);

  // An empty blob is a protocol-legal (if useless) payload: the
  // compile service rejects it later with a typed error, not here.
  SubmitDfgMsg empty;
  EXPECT_EQ(decode_submit_dfg(encode_submit_dfg(empty)), empty);
}

TEST(Codec, DfgCompiledRoundTripsWithAndWithoutOutputs) {
  DfgCompiledMsg msg;
  msg.tag = 42;
  msg.dfg_hash = 0xCD067F0722C52F50ull;
  msg.cache_hit = 1;
  msg.compile_us = 0;
  msg.dnodes_used = 5;
  msg.max_latency = 4;
  msg.pushes_per_cycle = 2;
  msg.input_count = 1;
  msg.outputs = {{"out", 4, 0}, {"aux.tap", 3, 1}};
  EXPECT_EQ(decode_dfg_compiled(encode_dfg_compiled(msg)), msg);
  EXPECT_EQ(decode_dfg_compiled(encode_dfg_compiled(DfgCompiledMsg{})),
            DfgCompiledMsg{});
}

TEST(Codec, SubmitDfgJobRoundTrips) {
  SubmitDfgJobMsg msg;
  msg.tag = 43;
  msg.geometry = RingGeometry{4, 2, 16};
  msg.dfg = {'S', 'D', 'F', 'G', 1, 0};
  msg.streams = {{1, static_cast<Word>(-2), 3},
                 {static_cast<Word>(-4), 5, static_cast<Word>(-6)}};
  msg.trace_id = 99;
  EXPECT_EQ(decode_submit_dfg_job(encode_submit_dfg_job(msg)), msg);
}

TEST(Codec, V3DfgTruncationsAndTrailingBytesReject) {
  const auto exercise = [](const std::vector<std::uint8_t>& bytes,
                           auto decode) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_THROW((void)decode({bytes.data(), len}), ProtocolError)
          << "prefix " << len;
    }
    auto trailing = bytes;
    trailing.push_back(0x5A);
    EXPECT_THROW((void)decode(trailing), ProtocolError);
  };
  exercise(encode_submit_dfg(sample_submit_dfg()),
           [](std::span<const std::uint8_t> p) {
             return decode_submit_dfg(p);
           });
  exercise(encode_dfg_compiled(
               DfgCompiledMsg{.tag = 1, .outputs = {{"y", 2, 0}}}),
           [](std::span<const std::uint8_t> p) {
             return decode_dfg_compiled(p);
           });
  exercise(encode_submit_dfg_job(SubmitDfgJobMsg{
               .tag = 2, .dfg = {1, 2, 3}, .streams = {{7, 8}}}),
           [](std::span<const std::uint8_t> p) {
             return decode_submit_dfg_job(p);
           });
}

TEST(Codec, DfgJobStreamCountIsCappedBeforeBuffering) {
  SubmitDfgJobMsg msg;
  msg.tag = 7;
  msg.dfg = {1, 2, 3, 4};
  msg.streams = {{1}, {2}};
  auto bytes = encode_submit_dfg_job(msg);
  // Stream count u32 sits after tag(4) + geometry(6) + blob(4 + len).
  const std::size_t count_at = 4 + 6 + 4 + msg.dfg.size();
  const std::uint32_t huge = kMaxDfgJobStreams + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[count_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(huge >> (8 * i));
  }
  try {
    (void)decode_submit_dfg_job(bytes);
    FAIL() << "oversized stream count accepted";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("limit"), std::string::npos);
  }
}

TEST(Codec, DfgCompiledOutputCountOverrunIsTyped) {
  auto bytes = encode_dfg_compiled(DfgCompiledMsg{});
  // Output count u32 sits at 4+8+1+4+2+2+2+2 = 25; claim 2^31 entries.
  bytes[25 + 3] = 0x80;
  try {
    (void)decode_dfg_compiled(bytes);
    FAIL() << "overrunning output count accepted";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("overruns"), std::string::npos);
  }
}

TEST(Versioning, AllFramingVersionsParseAndOldPayloadsStayBitIdentical) {
  // All five supported framing versions parse and report themselves;
  // the frame header layout did not change for v3/v4/v5.
  for (const std::uint16_t v :
       {std::uint16_t{1}, std::uint16_t{2}, std::uint16_t{3},
        std::uint16_t{4}, std::uint16_t{5}}) {
    std::vector<std::uint8_t> wire;
    append_frame(wire, MsgType::kPing, encode_ping(3), v);
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(try_parse_frame(wire, kDefaultMaxFrameBytes, frame, consumed),
              ParseStatus::kFrame);
    EXPECT_EQ(frame.version, v);
  }

  // v1/v2 payload codecs are untouched by later versions:
  // byte-identical encodes.
  JobRequest req = sample_request(KernelId::kFir);
  req.trace_id = 0x77;
  EXPECT_EQ(encode_job_request(req, 2), encode_job_request(req, 2));
  const JobResultMsg res;
  EXPECT_EQ(encode_job_result(res, 1), encode_job_result(res, 1));
  // Pre-v5 Error payloads carry no retry_after_ms tail.
  ErrorMsg err;
  err.code = ErrorCode::kBusy;
  err.message = "x";
  err.retry_after_ms = 25;
  const auto v4_err = encode_error(err, 4);
  EXPECT_EQ(decode_error(v4_err, 4).retry_after_ms, 0u);
  EXPECT_EQ(encode_error(err, 5).size(), v4_err.size() + 4);
  EXPECT_EQ(kProtocolVersion, 5);
  EXPECT_EQ(kMinProtocolVersion, 1);
}

// ---------------------------------------------------------------------------
// v4 tiled-GEMM payload

SubmitGemmMsg sample_gemm() {
  SubmitGemmMsg msg;
  msg.tag = 0x47454D;
  msg.geometry = RingGeometry{8, 2, 16};
  msg.spec.m = 17;
  msg.spec.k = 9;
  msg.spec.n = 13;
  msg.spec.dtype = tile::Dtype::kInt16;
  msg.spec.shift = 5;
  msg.spec.mapping = tile::Mapping::kWeightStationary;
  msg.spec.tile_n = 4;
  msg.scratch_tiles = 32;
  msg.a.assign(msg.spec.m * msg.spec.k, 0x0102);
  msg.b.assign(msg.spec.k * msg.spec.n, 0x0304);
  msg.trace_id = 0xF00DF00DF00Dull;
  return msg;
}

TEST(SubmitGemm, RoundTripsAllFields) {
  const SubmitGemmMsg msg = sample_gemm();
  const SubmitGemmMsg back = decode_submit_gemm(encode_submit_gemm(msg));
  EXPECT_EQ(back, msg);
}

TEST(SubmitGemm, GoldenBytesPinTheLayout) {
  // Pin the fixed prefix of the layout: tag u32, geometry 3xu16,
  // m/k/n u16, dtype u8, shift u8, mapping u8, tile_n u16,
  // scratch_tiles u32 — all little-endian.
  SubmitGemmMsg msg = sample_gemm();
  msg.tag = 0x01020304;
  const std::vector<std::uint8_t> wire = encode_submit_gemm(msg);
  const std::vector<std::uint8_t> want_prefix = {
      0x04, 0x03, 0x02, 0x01,  // tag
      0x08, 0x00, 0x02, 0x00, 0x10, 0x00,  // geometry 8,2,16
      0x11, 0x00,              // m = 17
      0x09, 0x00,              // k = 9
      0x0D, 0x00,              // n = 13
      0x01,                    // dtype int16
      0x05,                    // shift
      0x01,                    // mapping ws
      0x04, 0x00,              // tile_n
      0x20, 0x00, 0x00, 0x00,  // scratch_tiles = 32
  };
  ASSERT_GE(wire.size(), want_prefix.size());
  EXPECT_TRUE(std::equal(want_prefix.begin(), want_prefix.end(),
                         wire.begin()));
  // Tail: a words (u32 count + u16 each), b words, trace_id u64.
  EXPECT_EQ(wire.size(), want_prefix.size() + 4 + msg.a.size() * 2 + 4 +
                             msg.b.size() * 2 + 8);
}

TEST(SubmitGemm, TruncatedPayloadThrows) {
  const std::vector<std::uint8_t> wire =
      encode_submit_gemm(sample_gemm());
  for (const std::size_t cut : {0ul, 4ul, 11ul, wire.size() - 1}) {
    EXPECT_THROW(decode_submit_gemm(
                     std::span<const std::uint8_t>(wire.data(), cut)),
                 ProtocolError)
        << "at cut " << cut;
  }
}

TEST(SubmitGemm, DecodeRejectsInvalidSpecs) {
  const auto mutate = [](auto&& f) {
    SubmitGemmMsg msg = sample_gemm();
    f(msg);
    return encode_submit_gemm(msg);
  };
  // Unknown dtype / mapping enum values.
  EXPECT_THROW(decode_submit_gemm(mutate([](SubmitGemmMsg& m) {
                 m.spec.dtype = static_cast<tile::Dtype>(9);
               })),
               ProtocolError);
  EXPECT_THROW(decode_submit_gemm(mutate([](SubmitGemmMsg& m) {
                 m.spec.mapping = static_cast<tile::Mapping>(7);
               })),
               ProtocolError);
  // Operand sizes must match the spec exactly.
  EXPECT_THROW(decode_submit_gemm(mutate([](SubmitGemmMsg& m) {
                 m.a.pop_back();
               })),
               ProtocolError);
  EXPECT_THROW(decode_submit_gemm(mutate([](SubmitGemmMsg& m) {
                 m.b.push_back(0);
               })),
               ProtocolError);
  // Dimension / scratchpad caps.
  EXPECT_THROW(decode_submit_gemm(mutate([](SubmitGemmMsg& m) {
                 m.spec.n = kMaxGemmDim + 1;
                 m.b.assign(m.spec.k * m.spec.n, 0);
               })),
               ProtocolError);
  EXPECT_THROW(decode_submit_gemm(mutate([](SubmitGemmMsg& m) {
                 m.scratch_tiles = 0;
               })),
               ProtocolError);
  EXPECT_THROW(decode_submit_gemm(mutate([](SubmitGemmMsg& m) {
                 m.scratch_tiles = kMaxGemmScratchTiles + 1;
               })),
               ProtocolError);
  // Degenerate spec fields funnel through GemmSpec::validate.
  EXPECT_THROW(decode_submit_gemm(mutate([](SubmitGemmMsg& m) {
                 m.spec.shift = 16;
               })),
               ProtocolError);
}

// ---------------------------------------------------------------------------
// v5 batched submit

SubmitJobBatchMsg sample_batch() {
  SubmitJobBatchMsg msg;
  msg.tag = 0xBA7C4;
  msg.trace_id = 0xCAFE0001;
  for (const KernelId k : {KernelId::kFir, KernelId::kMatvec8,
                           KernelId::kDwt53}) {
    JobRequest req = sample_request(k);
    req.tag = msg.jobs.size() + 1;
    req.trace_id = 0x1000 + msg.jobs.size();
    msg.jobs.push_back(std::move(req));
  }
  return msg;
}

TEST(BatchSubmit, SubmitJobBatchRoundTrips) {
  const SubmitJobBatchMsg msg = sample_batch();
  EXPECT_EQ(decode_submit_job_batch(encode_submit_job_batch(msg)), msg);
  // An empty batch is wire-legal; admission answers it inline.
  SubmitJobBatchMsg empty;
  empty.tag = 7;
  EXPECT_EQ(decode_submit_job_batch(encode_submit_job_batch(empty)),
            empty);
}

TEST(BatchSubmit, JobBatchResultRoundTripsMixedOutcomes) {
  JobBatchResultMsg msg;
  msg.tag = 0xBA7C4;
  JobBatchEntryMsg ok_entry;
  ok_entry.ok = 1;
  ok_entry.result.tag = 1;
  ok_entry.result.outputs = {1, 2, 3};
  ok_entry.result.sim_cycles = 99;
  ok_entry.result.trace_id = 0x1000;
  msg.entries.push_back(ok_entry);
  JobBatchEntryMsg busy_entry;
  busy_entry.ok = 0;
  busy_entry.error.code = ErrorCode::kBusy;
  busy_entry.error.message = "job queue is full — resubmit later";
  busy_entry.error.retry_after_ms = 25;
  msg.entries.push_back(busy_entry);
  const JobBatchResultMsg back =
      decode_job_batch_result(encode_job_batch_result(msg));
  EXPECT_EQ(back, msg);
  EXPECT_EQ(back.entries[1].error.retry_after_ms, 25u);
}

TEST(BatchSubmit, JobCountIsCappedBeforeDecodingEntries) {
  auto bytes = encode_submit_job_batch(sample_batch());
  // Job count u32 sits after tag u32; claim kMaxBatchJobs + 1.
  const std::uint32_t bomb =
      static_cast<std::uint32_t>(kMaxBatchJobs + 1);
  bytes[4] = static_cast<std::uint8_t>(bomb & 0xFF);
  bytes[5] = static_cast<std::uint8_t>((bomb >> 8) & 0xFF);
  bytes[6] = static_cast<std::uint8_t>((bomb >> 16) & 0xFF);
  bytes[7] = static_cast<std::uint8_t>((bomb >> 24) & 0xFF);
  try {
    (void)decode_submit_job_batch(bytes);
    FAIL() << "oversized batch accepted";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("limit"), std::string::npos);
  }
}

TEST(BatchSubmit, TruncationsAndTrailingBytesReject) {
  const auto wire = encode_submit_job_batch(sample_batch());
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{9},
        wire.size() - 1}) {
    EXPECT_THROW(decode_submit_job_batch(
                     std::span<const std::uint8_t>(wire.data(), keep)),
                 ProtocolError)
        << "kept " << keep;
  }
  auto trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(decode_submit_job_batch(trailing), ProtocolError);

  const auto reply = encode_job_batch_result(JobBatchResultMsg{});
  auto reply_trailing = reply;
  reply_trailing.push_back(0);
  EXPECT_THROW(decode_job_batch_result(reply_trailing), ProtocolError);
}

TEST(BatchSubmit, EntriesNestThePerVersionJobCodecs) {
  // A v1 batch nests v1 job blobs: no trace_id / telemetry fields, so
  // the whole encode shrinks and decoding at v1 round-trips with the
  // v2+ tails zeroed.
  SubmitJobBatchMsg msg = sample_batch();
  const auto v5 = encode_submit_job_batch(msg, 5);
  const auto v1 = encode_submit_job_batch(msg, 1);
  EXPECT_LT(v1.size(), v5.size());
  const SubmitJobBatchMsg back = decode_submit_job_batch(v1, 1);
  ASSERT_EQ(back.jobs.size(), msg.jobs.size());
  for (const auto& job : back.jobs) EXPECT_EQ(job.trace_id, 0u);
}

}  // namespace
}  // namespace sring::net
