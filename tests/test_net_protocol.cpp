// Wire-protocol unit tests: byte-level framing, CRC, codec round
// trips, and the malformed-input taxonomy (truncated, oversized, bad
// magic/version, CRC mismatch) — all without a socket.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/image.hpp"
#include "net/protocol.hpp"
#include "rt/runtime.hpp"

namespace sring::net {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  return std::vector<std::uint8_t>(s, s + std::strlen(s));
}

TEST(Crc32, MatchesIeeeCheckValue) {
  const auto data = bytes_of("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0u);
}

TEST(Framing, RoundTripsAllMessageTypes) {
  for (const MsgType type :
       {MsgType::kPing, MsgType::kSubmitJob, MsgType::kDrainAck}) {
    const auto payload = bytes_of("some payload");
    std::vector<std::uint8_t> wire;
    append_frame(wire, type, payload);
    EXPECT_EQ(wire.size(),
              kHeaderBytes + payload.size() + kTrailerBytes);

    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(try_parse_frame(wire, kDefaultMaxFrameBytes, frame, consumed),
              ParseStatus::kFrame);
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(Framing, TwoFramesParseBackToBack) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kPing, encode_ping(1));
  append_frame(wire, MsgType::kDrain, {});

  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(try_parse_frame(wire, kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kFrame);
  EXPECT_EQ(frame.type, MsgType::kPing);
  wire.erase(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(consumed));
  ASSERT_EQ(try_parse_frame(wire, kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kFrame);
  EXPECT_EQ(frame.type, MsgType::kDrain);
  EXPECT_EQ(consumed, wire.size());
}

TEST(Framing, TruncatedPrefixWantsMoreBytes) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kPing, encode_ping(42));
  Frame frame;
  std::size_t consumed = 0;
  // Every strict prefix is kNeedMore — a partial frame never errors,
  // never parses.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(wire.data(), cut);
    EXPECT_EQ(try_parse_frame(prefix, kDefaultMaxFrameBytes, frame, consumed),
              ParseStatus::kNeedMore)
        << "at prefix length " << cut;
  }
}

TEST(Framing, EmptyBufferWantsMoreBytes) {
  Frame frame;
  std::size_t consumed = 1;
  // A default span has a null data(); the parser must not hand it to
  // memcmp (UB even at length 0 — UBSan flags it).
  EXPECT_EQ(try_parse_frame(std::span<const std::uint8_t>{},
                            kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kNeedMore);
  EXPECT_EQ(consumed, 0u);
}

TEST(Framing, BadMagicRejectsOnFirstDivergentByte) {
  Frame frame;
  std::size_t consumed = 0;
  const auto garbage = bytes_of("GET / HTTP/1.1\r\n");
  EXPECT_EQ(try_parse_frame(garbage, kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kBadMagic);
  // Even a single wrong byte is enough.
  const std::vector<std::uint8_t> one = {'X'};
  EXPECT_EQ(try_parse_frame(one, kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kBadMagic);
}

TEST(Framing, BadVersionRejected) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kPing, encode_ping(7));
  wire[4] = 0xFE;  // version low byte
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(try_parse_frame(wire, kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kBadVersion);
}

TEST(Framing, OversizedFrameRejectedFromHeaderAlone) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kSubmitJob, bytes_of("xx"));
  wire[8] = 0xFF;  // length field -> huge
  wire[9] = 0xFF;
  wire[10] = 0xFF;
  wire[11] = 0x7F;
  Frame frame;
  std::size_t consumed = 0;
  // The limit applies before any payload bytes arrive.
  EXPECT_EQ(try_parse_frame(
                std::span<const std::uint8_t>(wire.data(), kHeaderBytes),
                kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kTooLarge);
}

TEST(Framing, CrcMismatchRejected) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kPing, encode_ping(99));
  wire[kHeaderBytes] ^= 0x01;  // flip one payload bit
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(try_parse_frame(wire, kDefaultMaxFrameBytes, frame, consumed),
            ParseStatus::kBadCrc);
}

JobRequest sample_request(KernelId kernel) {
  JobRequest req;
  req.kernel = kernel;
  req.geometry = {8, 2, 16};
  req.tag = 0xC0FFEE;
  switch (kernel) {
    case KernelId::kFir:
      req.fir_coeffs = {1, static_cast<Word>(-2), 3};
      req.input = {10, 20, 30, 40};
      break;
    case KernelId::kMotionEstimation:
      req.me_ref = Image::synthetic(16, 16, 3);
      req.me_cand = Image::shifted(req.me_ref, 1, 0, 5, 2);
      req.me_rx = 4;
      req.me_ry = 4;
      req.me_range = 1;
      break;
    case KernelId::kDwt53:
      req.input = {1, 2, 3, 4, 5, 6, 7, 8};
      break;
    case KernelId::kMatvec8:
      req.matvec_m.assign(64, 7);
      req.input.assign(16, 3);
      break;
  }
  return req;
}

TEST(Codec, JobRequestRoundTripsForEveryKernel) {
  for (const KernelId k :
       {KernelId::kFir, KernelId::kMotionEstimation, KernelId::kDwt53,
        KernelId::kMatvec8}) {
    const JobRequest req = sample_request(k);
    const JobRequest back = decode_job_request(encode_job_request(req));
    EXPECT_EQ(back, req);
  }
}

TEST(Codec, JobResultRoundTrips) {
  JobResultMsg msg;
  msg.tag = 7;
  msg.outputs = {1, 0xFFFF, 3};
  msg.sim_cycles = 123456789;
  msg.worker = 3;
  msg.reused_system = 1;
  msg.counters = {{"sim.cycles", 123456789}, {"sim.dnode_ops", 42}};
  EXPECT_EQ(decode_job_result(encode_job_result(msg)), msg);
}

TEST(Codec, ErrorAndServerInfoAndPingRoundTrip) {
  ErrorMsg err;
  err.tag = 9;
  err.code = ErrorCode::kBusy;
  err.message = "job queue is full — resubmit later";
  EXPECT_EQ(decode_error(encode_error(err)), err);

  ServerInfoMsg info;
  info.workers = 8;
  info.queue_capacity = 64;
  info.max_frame_bytes = 1 << 20;
  info.jobs_completed = 12345;
  info.server = "sring-serve";
  EXPECT_EQ(decode_server_info(encode_server_info(info)), info);

  EXPECT_EQ(decode_ping(encode_ping(0xDEADBEEFCAFEull)), 0xDEADBEEFCAFEull);
}

TEST(Codec, TruncatedPayloadThrowsTyped) {
  auto payload = encode_job_request(sample_request(KernelId::kFir));
  payload.resize(payload.size() / 2);
  EXPECT_THROW(decode_job_request(payload), ProtocolError);
}

TEST(Codec, TrailingBytesThrowTyped) {
  auto payload = encode_ping(5);
  payload.push_back(0);
  EXPECT_THROW(decode_ping(payload), ProtocolError);
}

TEST(Codec, UnknownKernelIdThrowsTyped) {
  auto payload = encode_job_request(sample_request(KernelId::kDwt53));
  payload[4] = 0x77;  // kernel id low byte (after u32 tag)
  payload[5] = 0x00;
  EXPECT_THROW(decode_job_request(payload), ProtocolError);
}

TEST(Codec, ImagePixelCountMismatchThrowsTyped) {
  JobRequest req = sample_request(KernelId::kMotionEstimation);
  auto payload = encode_job_request(req);
  // Shrink the declared ref width: pixels no longer match w*h.  The
  // width sits after tag u32 + kernel u16 + geometry u16*3.
  payload[12] = 0x08;
  EXPECT_THROW(decode_job_request(payload), ProtocolError);
}

TEST(JobMapping, MatchesKernelDescriptors) {
  const JobRequest req = sample_request(KernelId::kFir);
  const rt::Job job = to_rt_job(req);
  EXPECT_EQ(job.name, "fir.spatial");
  EXPECT_EQ(job.take_words, req.input.size());
  EXPECT_FALSE(job.program_key.empty());

  JobRequest bad = sample_request(KernelId::kMatvec8);
  bad.matvec_m.resize(63);
  EXPECT_THROW(to_rt_job(bad), SimError);
}

// A tiny valid frame could otherwise declare a u16 search range whose
// (2*range+1)^2 displacement set allocates ~100 GB on the poll thread;
// the cap turns that into a typed Error{kBadRequest} before any
// allocation happens.
TEST(JobMapping, MotionRangeAboveCapThrowsBeforeAllocating) {
  JobRequest bomb = sample_request(KernelId::kMotionEstimation);
  bomb.me_range = 0xFFFF;
  EXPECT_THROW(to_rt_job(bomb), SimError);
  bomb.me_range = kMaxMotionRange + 1;
  EXPECT_THROW(to_rt_job(bomb), SimError);
}

}  // namespace
}  // namespace sring::net
