// Tests for the offload analysis model, including validation against
// the cycle-accurate simulation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/fir_kernel.hpp"
#include "model/offload.hpp"

namespace sring::model {
namespace {

OffloadScenario base() {
  OffloadScenario s;
  s.samples = 1024;
  s.host_cycles_per_sample = 20;
  s.host_clock_hz = 450e6;
  s.ring_cycles_per_sample = 1;
  s.ring_clock_hz = 200e6;
  s.link_bytes_per_s = 250e6;
  s.bytes_per_sample = 4;
  s.startup_cycles = 64;
  return s;
}

TEST(Offload, ComponentsAddUp) {
  const auto a = analyze_offload(base());
  EXPECT_NEAR(a.host_only_s, 1024 * 20 / 450e6, 1e-12);
  EXPECT_NEAR(a.ring_compute_s, 1024 / 200e6, 1e-12);
  EXPECT_NEAR(a.transfer_s, 1024 * 4 / 250e6, 1e-12);
  // PCI at 250 MB/s is the bound: 16.4 us transfer vs 5.1 us compute.
  EXPECT_GT(a.transfer_s, a.ring_compute_s);
  EXPECT_NEAR(a.offload_total_s, 64 / 200e6 + a.transfer_s, 1e-12);
  EXPECT_TRUE(a.offload_wins);
  EXPECT_GT(a.speedup, 2.0);
}

TEST(Offload, StartupDominatesTinyStreams) {
  auto s = base();
  s.samples = 4;
  const auto a = analyze_offload(s);
  EXPECT_FALSE(a.offload_wins) << "4 samples cannot amortize startup";
}

TEST(Offload, BreakEvenIsConsistent) {
  const auto s = base();
  const std::size_t be = break_even_samples(s);
  ASSERT_GT(be, 0u);
  auto at = s;
  at.samples = be;
  EXPECT_TRUE(analyze_offload(at).offload_wins);
  at.samples = be - 1;
  EXPECT_FALSE(analyze_offload(at).offload_wins);
}

TEST(Offload, NeverWinsAgainstAFastHostOverASlowLink) {
  auto s = base();
  s.host_cycles_per_sample = 1;   // the host is already optimal
  s.link_bytes_per_s = 1e6;       // and the link is terrible
  EXPECT_EQ(break_even_samples(s), 0u);
}

TEST(Offload, SpeedupSaturatesAtRateRatio) {
  auto s = base();
  s.samples = 1 << 22;
  const auto a = analyze_offload(s);
  const double per_sample_host = s.host_cycles_per_sample / s.host_clock_hz;
  const double per_sample_offload = a.transfer_s / s.samples;
  EXPECT_NEAR(a.speedup, per_sample_host / per_sample_offload, 0.01);
}

TEST(Offload, RejectsBadRates) {
  auto s = base();
  s.link_bytes_per_s = 0;
  EXPECT_THROW(analyze_offload(s), SimError);
}

TEST(Offload, ModelMatchesPciLimitedSimulation) {
  // The analytic steady-state rate must agree with the cycle-accurate
  // simulator within a few percent.
  Rng rng(7);
  std::vector<Word> x(2048);
  for (auto& v : x) v = rng.next_word_in(-100, 100);
  const std::vector<Word> coeffs = {1, 2, 3};
  const RingGeometry ring8{4, 2, 16};
  const LinkRate pci = LinkRate::from_bytes_per_second(250e6, 200e6);
  const auto run = kernels::run_spatial_fir(ring8, x, coeffs, pci);

  OffloadScenario s;
  s.samples = x.size();
  s.host_cycles_per_sample = 20;  // irrelevant here
  s.ring_cycles_per_sample = 1.0;
  s.link_bytes_per_s = 250e6;
  // The simulated link is full-duplex (250 MB/s per direction), so the
  // gating flow is the 2-byte/sample input stream.
  s.bytes_per_sample = 2;
  s.startup_cycles = 16;
  const auto a = analyze_offload(s);

  const double sim_seconds = run.stats.cycles / 200e6;
  EXPECT_NEAR(sim_seconds, a.offload_total_s,
              0.05 * a.offload_total_s);
}

}  // namespace
}  // namespace sring::model
