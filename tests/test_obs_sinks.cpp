// Golden-file tests of the event sinks: byte-exact output for
// hand-fed event streams, plus end-to-end structural validation of a
// real 3-Dnode MAC run traced through the JSONL and Chrome sinks.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "asm/program_builder.hpp"
#include "json_test_util.hpp"
#include "obs/sinks.hpp"
#include "sim/system.hpp"

namespace sring {
namespace {

RingGeometry small_geom() { return {3, 1, 16}; }

/// Three Dnodes, one per layer, all in local stand-alone mode.  Layer 0
/// MACs host pairs into R0 and streams every partial sum back; layers 1
/// and 2 run a register-only MAC so every Dnode issues each cycle.
LoadableProgram three_dnode_mac_program() {
  const RingGeometry g = small_geom();
  ProgramBuilder pb(g, "trace_mac3");
  PageBuilder page(g);
  SwitchRoute r;
  r.in1 = PortRoute::host();
  r.in2 = PortRoute::host();
  page.route(0, 0, r);
  for (std::size_t layer = 0; layer < g.layers; ++layer) {
    page.mode(layer, 0, DnodeMode::kLocal);
  }
  pb.add_page(page);

  DnodeInstr host_mac;
  host_mac.op = DnodeOp::kMac;
  host_mac.src_a = DnodeSrc::kIn1;
  host_mac.src_b = DnodeSrc::kIn2;
  host_mac.src_c = DnodeSrc::kR0;
  host_mac.dst = DnodeDst::kR0;
  host_mac.host_en = true;
  pb.local_program(0, {host_mac});

  DnodeInstr reg_mac;
  reg_mac.op = DnodeOp::kMac;
  reg_mac.src_a = DnodeSrc::kR1;
  reg_mac.src_b = DnodeSrc::kR2;
  reg_mac.src_c = DnodeSrc::kR0;
  reg_mac.dst = DnodeDst::kR0;
  pb.local_program(1, {reg_mac});
  pb.local_program(2, {reg_mac});

  pb.page_switch(0);
  pb.halt();
  return pb.build();
}

/// Run the 3-Dnode program with `sink` attached and return the cycle
/// count.  Detaches and finalizes the sink before returning.
std::uint64_t run_traced(obs::EventSink& sink) {
  System sys({small_geom()});
  sys.load(three_dnode_mac_program());
  sys.set_trace(&sink);
  sys.host().send(std::vector<Word>{2, 3, 4, 5});  // two MAC pairs
  sys.run_cycles(8);
  sys.set_trace(nullptr);
  sink.end();
  return sys.cycle();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  return lines;
}

// --- byte-exact goldens on a hand-fed stream ---------------------------

std::vector<obs::Event> golden_events() {
  return {
      {1, obs::kControllerTrack, "pgswitch", 0, 1},
      {2, obs::dnode_track(0), "mac", -6, 1},
      {2, obs::switch_track(1, 0), "route.update", 1, 1},
  };
}

TEST(JsonlSink, GoldenOutput) {
  std::ostringstream os;
  obs::JsonlSink sink(os);
  sink.begin(obs::make_tracks(1, 1));
  for (const auto& e : golden_events()) sink.event(e);
  sink.end();
  EXPECT_EQ(
      os.str(),
      "{\"type\":\"trace_begin\",\"tracks\":[\"ctrl\",\"bus\",\"ring\","
      "\"dnode 0.0\",\"switch 0\"]}\n"
      "{\"type\":\"event\",\"cycle\":1,\"track\":\"ctrl\","
      "\"name\":\"pgswitch\",\"value\":0,\"dur\":1}\n"
      "{\"type\":\"event\",\"cycle\":2,\"track\":\"dnode 0.0\","
      "\"name\":\"mac\",\"value\":-6,\"dur\":1}\n"
      "{\"type\":\"event\",\"cycle\":2,\"track\":\"switch 0\","
      "\"name\":\"route.update\",\"value\":1,\"dur\":1}\n"
      "{\"type\":\"trace_end\"}\n");
}

TEST(ChromeTraceSink, GoldenOutput) {
  std::ostringstream os;
  obs::ChromeTraceSink sink(os);
  sink.begin(obs::make_tracks(1, 1));
  for (const auto& e : golden_events()) sink.event(e);
  sink.end();
  EXPECT_EQ(
      os.str(),
      "[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"system\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"ctrl\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"bus\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"ring\"}},\n"
      "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"dnodes\"}},\n"
      "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"dnode 0.0\"}},\n"
      "{\"ph\":\"M\",\"pid\":3,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"switches\"}},\n"
      "{\"ph\":\"M\",\"pid\":3,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"switch 0\"}},\n"
      "{\"ph\":\"X\",\"ts\":1,\"dur\":1,\"pid\":1,\"tid\":0,"
      "\"name\":\"pgswitch\",\"args\":{\"value\":0}},\n"
      "{\"ph\":\"X\",\"ts\":2,\"dur\":1,\"pid\":2,\"tid\":0,"
      "\"name\":\"mac\",\"args\":{\"value\":-6}},\n"
      "{\"ph\":\"X\",\"ts\":2,\"dur\":1,\"pid\":3,\"tid\":0,"
      "\"name\":\"route.update\",\"args\":{\"value\":1}}\n"
      "]\n");
}

TEST(ChromeTraceSink, DestructorClosesTheArray) {
  std::ostringstream os;
  {
    obs::ChromeTraceSink sink(os);
    sink.begin(obs::make_tracks(1, 1));
    // owner "forgets" end()
  }
  const obs::JsonValue doc = test::parse_json(os.str());
  EXPECT_TRUE(doc.is_array());
}

// --- end-to-end: real System run through each sink ---------------------

TEST(JsonlSink, SystemRunIsValidJsonl) {
  std::ostringstream os;
  obs::JsonlSink sink(os);
  const std::uint64_t cycles = run_traced(sink);
  ASSERT_EQ(cycles, 8u);

  const auto lines = lines_of(os.str());
  ASSERT_GE(lines.size(), 3u);

  // Framing records.
  const obs::JsonValue head = test::parse_json(lines.front());
  EXPECT_EQ(head.find("type")->as_string(), "trace_begin");
  ASSERT_NE(head.find("tracks"), nullptr);
  EXPECT_EQ(head.find("tracks")->items().size(), 3u + 3u + 3u);
  const obs::JsonValue tail = test::parse_json(lines.back());
  EXPECT_EQ(tail.find("type")->as_string(), "trace_end");

  // Every interior line is a complete event record with a monotonically
  // nondecreasing cycle, labeled from 1 (the legacy trace convention).
  std::uint64_t prev_cycle = 1;
  std::size_t mac_on_dnode0 = 0;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    const obs::JsonValue e = test::parse_json(lines[i]);
    ASSERT_NE(e.find("type"), nullptr) << lines[i];
    EXPECT_EQ(e.find("type")->as_string(), "event");
    ASSERT_NE(e.find("cycle"), nullptr);
    ASSERT_NE(e.find("track"), nullptr);
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("value"), nullptr);
    ASSERT_NE(e.find("dur"), nullptr);
    const std::uint64_t cyc = e.find("cycle")->as_uint();
    EXPECT_GE(cyc, prev_cycle);
    EXPECT_LE(cyc, cycles);
    prev_cycle = cyc;
    if (e.find("track")->as_string() == "dnode 0.0" &&
        e.find("name")->as_string() == "mac") {
      ++mac_on_dnode0;
    }
  }
  EXPECT_GE(mac_on_dnode0, 2u) << "both host MAC pairs must be traced";
}

TEST(ChromeTraceSink, SystemRunIsValidChromeTrace) {
  std::ostringstream os;
  obs::ChromeTraceSink sink(os);
  run_traced(sink);

  const obs::JsonValue doc = test::parse_json(os.str());
  ASSERT_TRUE(doc.is_array());
  ASSERT_FALSE(doc.items().empty());

  std::size_t meta = 0, complete = 0, mac_events = 0;
  bool saw_dnode_thread_name = false;
  for (const obs::JsonValue& e : doc.items()) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    ASSERT_NE(e.find("name"), nullptr);
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "M") {
      ++meta;
      if (e.find("name")->as_string() == "thread_name" &&
          e.find("args")->find("name")->as_string() == "dnode 0.0") {
        saw_dnode_thread_name = true;
      }
      continue;
    }
    // Everything else must be a complete event with a timestamp.
    ASSERT_EQ(ph, "X");
    ++complete;
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("dur"), nullptr);
    ASSERT_NE(e.find("args"), nullptr);
    if (e.find("name")->as_string() == "mac" &&
        e.find("pid")->as_uint() == 2u) {
      ++mac_events;
    }
  }
  // 3 process_name + 9 thread_name metadata records for {3,1}.
  EXPECT_EQ(meta, 12u);
  EXPECT_GT(complete, 0u);
  EXPECT_TRUE(saw_dnode_thread_name);
  EXPECT_GE(mac_events, 2u);
}

TEST(TextSink, SystemRunKeepsLegacyLineFormat) {
  std::ostringstream os;
  obs::TextSink sink(os);
  const std::uint64_t cycles = run_traced(sink);

  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), cycles) << "one line per cycle";
  EXPECT_EQ(lines.front().substr(0, 4), "cyc ");
  EXPECT_NE(lines.front().find(" pc "), std::string::npos);
  EXPECT_NE(lines.front().find(" bus "), std::string::npos);
  // {3,1} geometry: three Dnode columns, two layer separators.
  std::size_t separators = 0;
  for (const char c : lines.front()) separators += (c == '/');
  EXPECT_EQ(separators, 2u);
}

}  // namespace
}  // namespace sring
