// JobQueue unit tests: FIFO order, bounded backpressure, close/drain
// semantics, statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "rt/job_queue.hpp"

namespace sring::rt {
namespace {

JobQueue::Envelope envelope(std::string name) {
  JobQueue::Envelope e;
  e.job.name = std::move(name);
  return e;
}

TEST(JobQueue, FifoOrder) {
  JobQueue q(8);
  EXPECT_TRUE(q.push(envelope("a")));
  EXPECT_TRUE(q.push(envelope("b")));
  EXPECT_TRUE(q.push(envelope("c")));
  EXPECT_EQ(q.pop()->job.name, "a");
  EXPECT_EQ(q.pop()->job.name, "b");
  EXPECT_EQ(q.pop()->job.name, "c");
}

TEST(JobQueue, RejectsZeroCapacity) {
  EXPECT_THROW(JobQueue q(0), SimError);
}

TEST(JobQueue, PushBlocksWhenFullUntilPopped) {
  JobQueue q(2);
  ASSERT_TRUE(q.push(envelope("a")));
  ASSERT_TRUE(q.push(envelope("b")));

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(envelope("c")));  // must wait for a pop
    third_pushed = true;
  });

  // The producer should be parked on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());

  EXPECT_EQ(q.pop()->job.name, "a");
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_GE(q.stats().blocked_pushes, 1u);

  EXPECT_EQ(q.pop()->job.name, "b");
  EXPECT_EQ(q.pop()->job.name, "c");
}

TEST(JobQueue, CloseDrainsBacklogThenEnds) {
  JobQueue q(4);
  ASSERT_TRUE(q.push(envelope("a")));
  ASSERT_TRUE(q.push(envelope("b")));
  q.close();

  EXPECT_FALSE(q.push(envelope("rejected")));

  // Backlog still drains after close...
  EXPECT_EQ(q.pop()->job.name, "a");
  EXPECT_EQ(q.pop()->job.name, "b");
  // ...then pop reports end-of-stream.
  EXPECT_FALSE(q.pop().has_value());
}

TEST(JobQueue, CloseWakesBlockedConsumer) {
  JobQueue q(4);
  std::atomic<bool> ended{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.pop().has_value());
    ended = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(ended.load());
  q.close();
  consumer.join();
  EXPECT_TRUE(ended.load());
}

TEST(JobQueue, StatsTrackDepthAndTraffic) {
  JobQueue q(4);
  EXPECT_EQ(q.stats().capacity, 4u);
  ASSERT_TRUE(q.push(envelope("a")));
  ASSERT_TRUE(q.push(envelope("b")));
  EXPECT_EQ(q.stats().depth, 2u);
  EXPECT_EQ(q.stats().enqueued, 2u);
  EXPECT_EQ(q.stats().max_depth, 2u);
  (void)q.pop();
  EXPECT_EQ(q.stats().depth, 1u);
  EXPECT_EQ(q.stats().dequeued, 1u);
  EXPECT_EQ(q.stats().max_depth, 2u);
  EXPECT_FALSE(q.stats().closed);
  q.close();
  EXPECT_TRUE(q.stats().closed);
}

}  // namespace
}  // namespace sring::rt
