// Loopback integration tests of the DFG compile service behind the
// net server (protocol v3): a submitted graph compiles server-side,
// runs on the worker fleet bit-exact to the local mapper, the second
// submission is a cache hit (no recompile, no validate, compile_us
// absent), mapper/codec diagnostics travel verbatim as kBadRequest
// with the connection surviving, and pre-v3 clients are refused the
// new message types.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mapper/mapper.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "svc/dfg_codec.hpp"
#include "svc/dfg_text.hpp"

namespace sring::net {
namespace {

using mapper::Dfg;
using mapper::DfgOp;

constexpr RingGeometry kGeom{8, 2, 16};

struct TestServer {
  explicit TestServer(ServerConfig cfg = {})
      : server(std::move(cfg)), thread([this] { server.run(); }) {}
  ~TestServer() { stop(); }

  void stop() {
    if (thread.joinable()) {
      server.request_drain();
      thread.join();
    }
  }

  Server server;
  std::thread thread;
};

ClientConfig client_config(std::uint16_t port) {
  ClientConfig cfg;
  cfg.port = port;
  cfg.io_timeout_ms = 10000;  // fail, don't hang
  return cfg;
}

/// Minimal blocking socket for the one byte-level case the Client
/// class deliberately cannot express: a v3 message type inside a
/// pre-v3 frame header.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    check(fd_ >= 0, "test: socket() failed");
    timeval tv{};
    tv.tv_sec = 10;  // receive deadline: fail, don't hang
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    check(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0,
          "test: connect() failed: " + std::string(std::strerror(errno)));
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_all(std::span<const std::uint8_t> bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      check(n > 0, "test: send failed");
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Next complete frame; false on orderly EOF or deadline.
  bool recv_frame(Frame& out) {
    std::uint8_t chunk[4096];
    while (true) {
      std::size_t consumed = 0;
      const ParseStatus status =
          try_parse_frame(in_, kDefaultMaxFrameBytes, out, consumed);
      if (status == ParseStatus::kFrame) {
        in_.erase(in_.begin(),
                  in_.begin() + static_cast<std::ptrdiff_t>(consumed));
        return true;
      }
      if (status != ParseStatus::kNeedMore) return false;
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      in_.insert(in_.end(), chunk, chunk + n);
    }
  }

  /// True when the server closes without sending anything further.
  bool recv_eof() {
    std::uint8_t chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    return n == 0;
  }

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> in_;
};

const char* kMacGraph =
    "x input\n"
    "k const 3\n"
    "m mul x k\n"
    "d delay m 1\n"
    "y add m d\n"
    "out output y\n";

std::vector<std::uint8_t> blob_of(const char* text) {
  return svc::encode_dfg(svc::parse_dfg_text(text));
}

std::vector<std::vector<Word>> random_streams(std::size_t count,
                                              std::size_t samples,
                                              std::uint64_t seed) {
  std::vector<std::vector<Word>> streams(count);
  Rng rng(seed);
  for (auto& s : streams) {
    s.resize(samples);
    for (auto& w : s) w = rng.next_word_in(-150, 150);
  }
  return streams;
}

std::uint64_t stat_counter(const StatsReplyMsg& stats, const char* name) {
  for (const auto& [n, v] : stats.counters) {
    if (n == name) return v;
  }
  return 0;
}

TEST(SvcServe, CompileThenRunBitExactWithCacheHitOnResubmit) {
  TestServer ts;
  Client client(client_config(ts.server.port()));
  const auto blob = blob_of(kMacGraph);

  // Local reference: the same compile the server performs.
  const Dfg dfg = svc::parse_dfg_text(kMacGraph);
  const mapper::MappedProgram mapped = mapper::map_dfg(dfg, kGeom);

  const RemoteDfgCompiled compiled = client.compile_dfg(blob, kGeom);
  ASSERT_TRUE(compiled.ok) << compiled.error;
  EXPECT_FALSE(compiled.cache_hit);
  EXPECT_EQ(compiled.dfg_hash, svc::dfg_hash(blob));
  EXPECT_EQ(compiled.input_count, mapped.input_count);
  EXPECT_EQ(compiled.max_latency, mapped.max_latency);
  EXPECT_EQ(compiled.pushes_per_cycle, mapped.pushes_per_cycle);
  EXPECT_EQ(compiled.dnodes_used, mapped.dnodes_used);
  ASSERT_EQ(compiled.outputs.size(), mapped.outputs.size());
  for (std::size_t i = 0; i < mapped.outputs.size(); ++i) {
    EXPECT_EQ(compiled.outputs[i].name, mapped.outputs[i].name);
    EXPECT_EQ(compiled.outputs[i].latency, mapped.outputs[i].latency);
    EXPECT_EQ(compiled.outputs[i].push_rank, mapped.outputs[i].push_rank);
  }

  // First run: already compiled above, so this is a cache hit too.
  const auto streams = random_streams(mapped.input_count, 32, 0xF00D);
  const RemoteDfgResult run1 = client.submit_dfg(blob, streams, kGeom, 77);
  ASSERT_TRUE(run1.ok) << run1.error;
  EXPECT_TRUE(run1.cache_hit);
  EXPECT_EQ(run1.trace_id, 77u);
  EXPECT_EQ(run1.dfg_hash, svc::dfg_hash(blob));
  const mapper::MappedRun local = mapper::run_mapped(mapped, streams);
  EXPECT_EQ(run1.streams, local.outputs);

  // Different data, same graph: still a hit, still bit-exact.
  const auto streams2 = random_streams(mapped.input_count, 48, 0xBEEF);
  const RemoteDfgResult run2 = client.submit_dfg(blob, streams2, kGeom);
  ASSERT_TRUE(run2.ok) << run2.error;
  EXPECT_TRUE(run2.cache_hit);
  EXPECT_EQ(run2.streams, mapper::run_mapped(mapped, streams2).outputs);

  // One miss (the compile_dfg), two hits, one validation — no
  // recompile or re-validate happened on the hit path.
  const StatsReplyMsg stats = client.stats();
  EXPECT_EQ(stat_counter(stats, "svc.compile.misses"), 1u);
  EXPECT_EQ(stat_counter(stats, "svc.compile.hits"), 2u);
  EXPECT_EQ(stat_counter(stats, "svc.compile.validations"), 1u);

  // A cache-hit DfgCompiled reports compile_us == 0: no compile ran.
  const RemoteDfgCompiled again = client.compile_dfg(blob, kGeom);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.compile_us, 0u);
}

TEST(SvcServe, MultiOutputGraphDelacesEveryStream) {
  TestServer ts;
  Client client(client_config(ts.server.port()));
  const char* text =
      "a input\n"
      "b input\n"
      "s add a b\n"
      "d sub a b\n"
      "sum output s\n"
      "diff output d\n";
  const auto blob = blob_of(text);
  const Dfg dfg = svc::parse_dfg_text(text);
  const mapper::MappedProgram mapped = mapper::map_dfg(dfg, kGeom);

  const auto streams = random_streams(2, 40, 0xCAFE);
  const RemoteDfgResult r = client.submit_dfg(blob, streams, kGeom);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.streams.size(), 2u);
  EXPECT_EQ(r.streams, mapper::run_mapped(mapped, streams).outputs);
}

TEST(SvcServe, MapperAndCodecDiagnosticsTravelVerbatim) {
  TestServer ts;
  Client client(client_config(ts.server.port()));

  // Recursive graph — a forward edge through the delay operand, the
  // one cycle shape assemble() permits.
  std::vector<mapper::DfgNode> nodes(3);
  nodes[0].op = DfgOp::kInput;
  nodes[0].name = "x";
  nodes[1].op = DfgOp::kDelay;
  nodes[1].a = 2;
  nodes[1].delay = 1;
  nodes[2].op = DfgOp::kAdd;
  nodes[2].a = 0;
  nodes[2].b = 1;
  const auto recursive =
      svc::encode_dfg(Dfg::assemble(std::move(nodes), {2}));
  std::string expected;
  try {
    const Dfg d = svc::decode_dfg(recursive);
    d.validate();
    (void)mapper::map_dfg(d, kGeom);
    FAIL() << "recursive graph mapped locally";
  } catch (const SimError& e) {
    expected = e.what();
  }
  const RemoteDfgCompiled r1 = client.compile_dfg(recursive, kGeom);
  EXPECT_FALSE(r1.ok);
  EXPECT_EQ(r1.error, expected);

  // Output-less graph: Dfg::validate()'s text, via the same wire path.
  const auto no_output = svc::encode_dfg(
      Dfg::assemble({mapper::DfgNode{DfgOp::kInput, 0, 0, 0, 0, "x"}}, {}));
  const RemoteDfgCompiled r2 = client.compile_dfg(no_output, kGeom);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("at least one output"), std::string::npos);

  // Codec-level damage: arity byte corrupted in an otherwise good blob.
  auto bad_arity = blob_of(kMacGraph);
  bad_arity[11] = 2;  // first node is an input (arity 0)
  const RemoteDfgCompiled r3 = client.compile_dfg(bad_arity, kGeom);
  EXPECT_FALSE(r3.ok);
  EXPECT_NE(r3.error.find("arity mismatch"), std::string::npos);

  // Graph too deep for a small ring: map_dfg's own diagnostic.
  std::string deep = "x input\n";
  std::string prev = "x";
  for (int i = 0; i < 12; ++i) {
    deep += "p" + std::to_string(i) + " abs " + prev + "\n";
    prev = "p" + std::to_string(i);
  }
  deep += "o output " + prev + "\n";
  const RemoteDfgCompiled r4 =
      client.compile_dfg(blob_of(deep.c_str()), RingGeometry{4, 2, 16});
  EXPECT_FALSE(r4.ok);
  EXPECT_NE(r4.error.find("map_dfg:"), std::string::npos);

  // After four bad graphs the connection is still alive and serving.
  const auto blob = blob_of(kMacGraph);
  const RemoteDfgCompiled ok = client.compile_dfg(blob, kGeom);
  EXPECT_TRUE(ok.ok) << ok.error;

  const StatsReplyMsg stats = client.stats();
  EXPECT_EQ(stat_counter(stats, "svc.compile.failures"), 4u);
}

TEST(SvcServe, StreamCountMismatchIsATypedRefusal) {
  TestServer ts;
  Client client(client_config(ts.server.port()));
  const auto blob = blob_of(kMacGraph);  // one input
  const RemoteDfgResult r =
      client.submit_dfg(blob, random_streams(2, 8, 1), kGeom);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("input stream"), std::string::npos);
}

TEST(SvcServe, PreV3ClientsAreRefusedDfgMessages) {
  TestServer ts;

  // Client-side gate: a v2-pinned client refuses to encode DFG frames.
  {
    ClientConfig cfg = client_config(ts.server.port());
    cfg.protocol_version = 2;
    Client old_client(cfg);
    EXPECT_THROW((void)old_client.compile_dfg(blob_of(kMacGraph), kGeom),
                 NetError);
    EXPECT_THROW((void)old_client.submit_dfg(blob_of(kMacGraph),
                                             random_streams(1, 4, 2),
                                             kGeom),
                 NetError);
    // The v2 dialect itself still works fine against the v3 server.
    EXPECT_GT(old_client.ping(), 0.0);
  }

  // Server-side gate: a hand-rolled frame carrying the v3 type inside
  // a v2 header answers Error{kBadRequest} and closes the connection.
  SubmitDfgMsg msg;
  msg.tag = 5;
  msg.geometry = kGeom;
  msg.dfg = blob_of(kMacGraph);
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kSubmitDfg, encode_submit_dfg(msg), 2);
  RawConn raw(ts.server.port());
  raw.send_all(wire);
  Frame reply;
  ASSERT_TRUE(raw.recv_frame(reply));
  ASSERT_EQ(reply.type, MsgType::kError);
  const ErrorMsg err = decode_error(reply.payload, reply.version);
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  EXPECT_NE(err.message.find("protocol v3"), std::string::npos);
  EXPECT_TRUE(raw.recv_eof());
}

TEST(SvcServe, DfgJobNameLandsInTheFlightRecorder) {
  ServerConfig cfg;
  cfg.slow_threshold_us = 0;  // everything is "slow": always captured
  TestServer ts(cfg);
  Client client(client_config(ts.server.port()));
  const auto blob = blob_of(kMacGraph);
  const RemoteDfgResult r =
      client.submit_dfg(blob, random_streams(1, 16, 3), kGeom, 42);
  ASSERT_TRUE(r.ok) << r.error;

  const StatsReplyMsg stats = client.stats(/*include_flight=*/true);
  const std::string want = "dfg/" + svc::dfg_hash_hex(r.dfg_hash);
  bool found = false;
  for (const auto& rec : stats.flight) {
    if (rec.name == want && rec.trace_id == 42) found = true;
  }
  EXPECT_TRUE(found) << "no flight record named " << want;
}

}  // namespace
}  // namespace sring::net
