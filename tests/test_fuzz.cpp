// Robustness fuzzing: random (but structurally valid) configurations
// and data must never crash the simulator, must preserve its
// accounting invariants, and must be fully deterministic.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/system.hpp"

namespace sring {
namespace {

RingGeometry random_geometry(Rng& rng) {
  RingGeometry g;
  g.layers = 1 + rng.next_below(8);
  g.lanes = 1 + rng.next_below(4);
  g.fb_depth = 1 + rng.next_below(16);
  return g;
}

DnodeInstr random_instr(Rng& rng) {
  DnodeInstr i;
  i.op = static_cast<DnodeOp>(
      rng.next_below(static_cast<std::uint64_t>(DnodeOp::kOpCount)));
  i.src_a = static_cast<DnodeSrc>(
      rng.next_below(static_cast<std::uint64_t>(DnodeSrc::kSrcCount)));
  i.src_b = static_cast<DnodeSrc>(
      rng.next_below(static_cast<std::uint64_t>(DnodeSrc::kSrcCount)));
  i.src_c = static_cast<DnodeSrc>(
      rng.next_below(static_cast<std::uint64_t>(DnodeSrc::kSrcCount)));
  i.dst = static_cast<DnodeDst>(
      rng.next_below(static_cast<std::uint64_t>(DnodeDst::kDstCount)));
  i.out_en = rng.next_below(2) != 0;
  i.bus_en = rng.next_below(4) == 0;
  i.host_en = rng.next_below(4) == 0;
  i.imm = rng.next_word();
  return i;
}

SwitchRoute random_route(Rng& rng, const RingGeometry& g) {
  const auto random_fb = [&]() {
    FeedbackAddr a;
    a.pipe = static_cast<std::uint8_t>(rng.next_below(g.switch_count()));
    a.lane = static_cast<std::uint8_t>(rng.next_below(g.lanes));
    a.depth = static_cast<std::uint8_t>(rng.next_below(g.fb_depth));
    return a;
  };
  const auto random_port = [&]() -> PortRoute {
    switch (rng.next_below(5)) {
      case 0:
        return PortRoute::zero();
      case 1:
        return PortRoute::prev(
            static_cast<std::uint8_t>(rng.next_below(g.lanes)));
      case 2:
        return PortRoute::host();
      case 3:
        return PortRoute::bus();
      default:
        return PortRoute::feedback(random_fb());
    }
  };
  SwitchRoute r;
  r.in1 = random_port();
  r.in2 = random_port();
  r.fifo1 = random_fb();
  r.fifo2 = random_fb();
  r.host_out_en = rng.next_below(8) == 0;
  r.host_out_lane = static_cast<std::uint8_t>(rng.next_below(g.lanes));
  return r;
}

struct FuzzOutcome {
  std::vector<Word> outputs;
  SystemStats stats;
};

FuzzOutcome run_random_system(std::uint64_t seed) {
  Rng rng(seed);
  const RingGeometry g = random_geometry(rng);

  ConfigPage page = ConfigPage::zeroed(g);
  for (auto& w : page.dnode_instr) w = random_instr(rng).encode();
  for (auto& m : page.dnode_mode) {
    m = static_cast<std::uint8_t>(rng.next_below(2));
  }
  for (auto& w : page.switch_route) w = random_route(rng, g).encode();

  LoadableProgram prog;
  prog.name = "fuzz";
  prog.geometry = g;
  prog.pages.push_back(page);
  // Random local programs for every Dnode.
  for (std::size_t d = 0; d < g.dnode_count(); ++d) {
    const std::size_t len = 1 + rng.next_below(kLocalProgramSlots);
    for (std::size_t s = 0; s < len; ++s) {
      prog.local_init.push_back({static_cast<std::uint32_t>(d),
                                 static_cast<std::uint8_t>(s),
                                 random_instr(rng).encode()});
    }
    prog.local_init.push_back(
        {static_cast<std::uint32_t>(d),
         static_cast<std::uint8_t>(LocalControl::kLimitSlot), len - 1});
  }
  // Controller: apply the page, then spin on WAITs until the cycle
  // budget runs out (HALT at the end is never reached in 500 cycles).
  RiscInstr page0;
  page0.op = RiscOp::kPage;
  RiscInstr wait;
  wait.op = RiscOp::kWait;
  wait.imm = 1000;
  RiscInstr halt;
  halt.op = RiscOp::kHalt;
  prog.controller_code = {page0.encode(), wait.encode(), halt.encode()};

  System sys({g});
  sys.load(prog);
  std::vector<Word> feed(2048);
  for (auto& w : feed) w = rng.next_word();
  sys.host().send(feed);
  sys.run_cycles(500);

  FuzzOutcome out;
  out.outputs = sys.host().take_received();
  out.stats = sys.stats();
  return out;
}

class SystemFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SystemFuzz, RandomConfigurationsNeverCrash) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const FuzzOutcome a = run_random_system(seed);

  // Accounting invariants.
  EXPECT_EQ(a.stats.cycles, 500u);
  EXPECT_LE(a.stats.dnode_ops, 500u * 32u);
  EXPECT_LE(a.stats.host_words_in, 2048u);
  EXPECT_GE(a.stats.arith_ops, a.stats.dnode_ops);
  EXPECT_LE(a.stats.arith_ops, 2 * a.stats.dnode_ops);
  EXPECT_EQ(a.outputs.size(), a.stats.host_words_out);

  // Full determinism: an identical run produces identical results.
  const FuzzOutcome b = run_random_system(seed);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.stats.dnode_ops, b.stats.dnode_ops);
  EXPECT_EQ(a.stats.host_words_in, b.stats.host_words_in);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemFuzz, ::testing::Range(0, 40));

}  // namespace
}  // namespace sring
