// CompileService unit tests: cache hit/miss/evict accounting, golden
// validation, typed failure paths, and the job plumbing that carries a
// compiled DFG through the rt fleet (svc/dfg_job).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mapper/mapper.hpp"
#include "rt/runtime.hpp"
#include "svc/compile_service.hpp"
#include "svc/dfg_codec.hpp"
#include "svc/dfg_job.hpp"
#include "svc/dfg_text.hpp"

namespace sring::svc {
namespace {

using mapper::Dfg;
using mapper::DfgOp;
using mapper::NodeId;

constexpr RingGeometry kGeom{8, 2, 16};

std::vector<std::uint8_t> blob_of(const char* text) {
  return encode_dfg(parse_dfg_text(text));
}

std::uint64_t counter_of(const CompileService& svc, const char* name) {
  const obs::Registry m = svc.metrics();
  const obs::Counter* c = m.find_counter(name);
  return c != nullptr ? c->value() : 0;
}

const char* kMacGraph =
    "x input\n"
    "k const 3\n"
    "m mul x k\n"
    "d delay m 1\n"
    "y add m d\n"
    "out output y\n";

TEST(CompileService, MissThenHitSharesTheSameProgram) {
  CompileService svc;
  const auto blob = blob_of(kMacGraph);

  const auto first = svc.get_or_compile(blob, kGeom);
  EXPECT_FALSE(first.cache_hit);
  ASSERT_NE(first.compiled, nullptr);
  EXPECT_EQ(first.compiled->dfg_hash, dfg_hash(blob));
  EXPECT_EQ(first.compiled->program_key,
            "dfg/" + dfg_hash_hex(dfg_hash(blob)) + "/8x2x16");

  const auto second = svc.get_or_compile(blob, kGeom);
  EXPECT_TRUE(second.cache_hit);
  // Same shared object, not an equal copy: jobs alias into it.
  EXPECT_EQ(second.compiled.get(), first.compiled.get());

  EXPECT_EQ(counter_of(svc, "svc.compile.misses"), 1u);
  EXPECT_EQ(counter_of(svc, "svc.compile.hits"), 1u);
  EXPECT_EQ(counter_of(svc, "svc.compile.validations"), 1u);
  EXPECT_EQ(counter_of(svc, "svc.compile.failures"), 0u);
  EXPECT_EQ(svc.cache_size(), 1u);
}

TEST(CompileService, GeometryIsPartOfTheCacheKey) {
  CompileService svc;
  const auto blob = blob_of(kMacGraph);
  const auto a = svc.get_or_compile(blob, kGeom);
  const auto b = svc.get_or_compile(blob, RingGeometry{4, 2, 16});
  EXPECT_FALSE(b.cache_hit);
  EXPECT_NE(a.compiled.get(), b.compiled.get());
  EXPECT_EQ(counter_of(svc, "svc.compile.misses"), 2u);
  EXPECT_EQ(svc.cache_size(), 2u);
}

TEST(CompileService, LruEvictionKeepsTheCapacityBound) {
  CompileServiceConfig cfg;
  cfg.cache_capacity = 2;
  CompileService svc(cfg);
  const auto a = blob_of("x input\ny abs x\no output y\n");
  const auto b = blob_of("x input\ny not x\no output y\n");
  const auto c = blob_of("x input\ny pass x\no output y\n");

  (void)svc.get_or_compile(a, kGeom);
  (void)svc.get_or_compile(b, kGeom);
  (void)svc.get_or_compile(a, kGeom);  // refresh a: b becomes LRU
  (void)svc.get_or_compile(c, kGeom);  // evicts b
  EXPECT_EQ(counter_of(svc, "svc.compile.evictions"), 1u);
  EXPECT_EQ(svc.cache_size(), 2u);

  EXPECT_TRUE(svc.get_or_compile(a, kGeom).cache_hit);
  EXPECT_FALSE(svc.get_or_compile(b, kGeom).cache_hit);  // recompiled
}

TEST(CompileService, EvictedProgramStaysAliveThroughItsSharedPtr) {
  CompileServiceConfig cfg;
  cfg.cache_capacity = 1;
  CompileService svc(cfg);
  const auto held = svc.get_or_compile(blob_of(kMacGraph), kGeom).compiled;
  (void)svc.get_or_compile(blob_of("x input\ny abs x\no output y\n"),
                           kGeom);  // evicts the first entry
  EXPECT_EQ(counter_of(svc, "svc.compile.evictions"), 1u);
  // The aliasing job-program pointer pattern depends on this.
  EXPECT_EQ(held->mapped.outputs.size(), 1u);
  EXPECT_EQ(held->program_key.rfind("dfg/", 0), 0u);
}

TEST(CompileService, MapperDiagnosticsSurviveVerbatimAndCountAsFailures) {
  CompileService svc;

  // Recursive graph: expressible only at the wire level (forward delay
  // reference), rejected by map_dfg with its own text.
  std::vector<mapper::DfgNode> nodes(3);
  nodes[0].op = DfgOp::kInput;
  nodes[0].name = "x";
  nodes[1].op = DfgOp::kDelay;
  nodes[1].a = 2;  // forward edge through the delay: recursion
  nodes[1].delay = 1;
  nodes[2].op = DfgOp::kAdd;
  nodes[2].a = 0;
  nodes[2].b = 1;
  const auto recursive =
      encode_dfg(Dfg::assemble(std::move(nodes), {2}));
  std::string mapper_text;
  try {
    const Dfg d = decode_dfg(recursive);
    d.validate();
    (void)mapper::map_dfg(d, kGeom);
    FAIL() << "recursive graph mapped";
  } catch (const SimError& e) {
    mapper_text = e.what();
  }
  try {
    (void)svc.get_or_compile(recursive, kGeom);
    FAIL() << "service compiled a recursive graph";
  } catch (const SimError& e) {
    EXPECT_EQ(std::string(e.what()), mapper_text);
  }

  // Output-less graph: decode accepts it, Dfg::validate() names it.
  const auto no_output =
      encode_dfg(Dfg::assemble(
          {mapper::DfgNode{DfgOp::kInput, 0, 0, 0, 0, "x"}}, {}));
  try {
    (void)svc.get_or_compile(no_output, kGeom);
    FAIL() << "output-less graph compiled";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("at least one output"),
              std::string::npos);
  }

  // Too many layers for the ring.
  std::string deep = "x input\n";
  std::string prev = "x";
  for (int i = 0; i < 12; ++i) {
    deep += "p" + std::to_string(i) + " abs " + prev + "\n";
    prev = "p" + std::to_string(i);
  }
  deep += "o output " + prev + "\n";
  try {
    (void)svc.get_or_compile(blob_of(deep.c_str()), RingGeometry{4, 2, 16});
    FAIL() << "overdeep graph compiled";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("map_dfg:"), std::string::npos);
  }

  EXPECT_EQ(counter_of(svc, "svc.compile.failures"), 3u);
  EXPECT_EQ(svc.cache_size(), 0u);  // failures are never cached
}

TEST(CompileService, MalformedBlobsAreBadRequestsNotCrashes) {
  CompileService svc;
  EXPECT_THROW((void)svc.get_or_compile({}, kGeom), SimError);
  const std::vector<std::uint8_t> garbage = {'S', 'D', 'F', 'G', 9, 9};
  EXPECT_THROW((void)svc.get_or_compile(garbage, kGeom), SimError);
  EXPECT_EQ(counter_of(svc, "svc.compile.failures"), 1u);
}

TEST(CompileService, FreshServiceAlreadyNamesItsSeries) {
  // CI greps svc.compile.hits off the first stats poll; the series
  // must exist before any compile happens.
  CompileService svc;
  const obs::Registry m = svc.metrics();
  for (const char* name :
       {"svc.compile.hits", "svc.compile.misses", "svc.compile.evictions",
        "svc.compile.validations", "svc.compile.failures"}) {
    EXPECT_NE(m.find_counter(name), nullptr) << name;
  }
  EXPECT_NE(m.find_histogram("svc.compile.latency_us"), nullptr);
}

TEST(DfgJob, RunsOnTheFleetBitExactToTheLocalMapper) {
  CompileService svc;
  const auto blob = blob_of(kMacGraph);
  const auto compiled = svc.get_or_compile(blob, kGeom).compiled;

  const std::size_t samples = 24;
  std::vector<std::vector<Word>> streams(compiled->mapped.input_count);
  Rng rng(0xABCDEF);
  for (auto& s : streams) {
    s.resize(samples);
    for (auto& w : s) w = rng.next_word_in(-100, 100);
  }

  rt::Runtime runtime;
  rt::Job job = make_dfg_job(compiled, streams);
  EXPECT_EQ(job.name, "dfg/" + dfg_hash_hex(compiled->dfg_hash));
  EXPECT_EQ(job.program_key, compiled->program_key);
  const rt::JobResult result = runtime.submit(std::move(job)).get();
  ASSERT_TRUE(result.ok) << result.error;

  const auto streams_out =
      delace_outputs(*compiled, result.outputs, samples);
  const auto local = mapper::run_mapped(compiled->mapped, streams);
  EXPECT_EQ(streams_out, local.outputs);
}

TEST(DfgJob, RejectsRaggedAndMismatchedStreams) {
  CompileService svc;
  const auto compiled =
      svc.get_or_compile(blob_of(kMacGraph), kGeom).compiled;
  EXPECT_THROW((void)make_dfg_job(compiled, {}), SimError);
  EXPECT_THROW((void)make_dfg_job(compiled, {{1, 2}, {3, 4}}), SimError);
  EXPECT_THROW((void)make_dfg_job(compiled, {{}}), SimError);
}

}  // namespace
}  // namespace sring::svc
