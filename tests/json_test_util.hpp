// Minimal recursive-descent JSON parser for the observability tests:
// sink output and RunReport files are parsed back into obs::JsonValue
// documents so the tests can assert on structure, not substrings.
// Throws std::runtime_error on malformed input.  Test-only — the
// library itself only ever serializes.
#pragma once

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace sring::test {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  obs::JsonValue parse() {
    obs::JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("bad literal");
    pos_ += word.size();
  }

  obs::JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return obs::JsonValue(string());
      case 't': literal("true"); return obs::JsonValue(true);
      case 'f': literal("false"); return obs::JsonValue(false);
      case 'n': literal("null"); return obs::JsonValue(nullptr);
      default: return number();
    }
  }

  obs::JsonValue object() {
    expect('{');
    obs::JsonValue obj = obs::JsonValue::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      const std::string key = string();
      skip_ws();
      expect(':');
      obj.set(key, value());
      skip_ws();
      if (consume('}')) return obj;
      expect(',');
    }
  }

  obs::JsonValue array() {
    expect('[');
    obs::JsonValue arr = obs::JsonValue::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      arr.push_back(value());
      skip_ws();
      if (consume(']')) return arr;
      expect(',');
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const long cp = std::strtol(hex.c_str(), nullptr, 16);
          // The sinks only escape control characters, so ASCII is
          // all this test parser ever needs to rebuild.
          if (cp > 0x7F) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  obs::JsonValue number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok(text_.substr(start, pos_ - start));
    if (tok.find_first_of(".eE") != std::string::npos) {
      return obs::JsonValue(std::strtod(tok.c_str(), nullptr));
    }
    if (tok[0] == '-') {
      return obs::JsonValue(
          static_cast<std::int64_t>(std::strtoll(tok.c_str(), nullptr, 10)));
    }
    return obs::JsonValue(
        static_cast<std::uint64_t>(std::strtoull(tok.c_str(), nullptr, 10)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline obs::JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

}  // namespace sring::test
