// Loopback integration tests of the tiled-GEMM workload behind the
// net server (protocol v4): a submitted GEMM is planned, staged and
// executed server-side, bit-exact to both the local tile runner and
// the scalar reference; the reply carries the scratchpad behaviour;
// pre-v4 clients are refused the new message type; and a lowering
// failure answers kBadRequest with the connection surviving.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "rt/runtime.hpp"
#include "tile/gemm_runner.hpp"

namespace sring::net {
namespace {

constexpr RingGeometry kGeom{8, 2, 16};

struct TestServer {
  explicit TestServer(ServerConfig cfg = {})
      : server(std::move(cfg)), thread([this] { server.run(); }) {}
  ~TestServer() { stop(); }

  void stop() {
    if (thread.joinable()) {
      server.request_drain();
      thread.join();
    }
  }

  Server server;
  std::thread thread;
};

ClientConfig client_config(std::uint16_t port) {
  ClientConfig cfg;
  cfg.port = port;
  cfg.io_timeout_ms = 30000;  // fail, don't hang
  return cfg;
}

/// Minimal blocking socket for the one byte-level case the Client
/// class deliberately cannot express: a v4 message type inside a
/// pre-v4 frame header.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    check(fd_ >= 0, "test: socket() failed");
    timeval tv{};
    tv.tv_sec = 10;  // receive deadline: fail, don't hang
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    check(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0,
          "test: connect() failed: " + std::string(std::strerror(errno)));
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_all(std::span<const std::uint8_t> bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      check(n > 0, "test: send failed");
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Next complete frame; false on orderly EOF or deadline.
  bool recv_frame(Frame& out) {
    std::uint8_t chunk[4096];
    while (true) {
      std::size_t consumed = 0;
      const ParseStatus status =
          try_parse_frame(in_, kDefaultMaxFrameBytes, out, consumed);
      if (status == ParseStatus::kFrame) {
        in_.erase(in_.begin(),
                  in_.begin() + static_cast<std::ptrdiff_t>(consumed));
        return true;
      }
      if (status != ParseStatus::kNeedMore) return false;
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      in_.insert(in_.end(), chunk, chunk + n);
    }
  }

  /// True when the server closes without sending anything further.
  bool recv_eof() {
    std::uint8_t chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    return n == 0;
  }

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> in_;
};

// The acceptance bar of the workload family: the served path returns
// the exact words both the local tile runner and the scalar reference
// produce, for ragged shapes, both dtypes and both mappings.
TEST(TileServe, ServedGemmBitExactAgainstLocalAndReference) {
  ServerConfig scfg;
  scfg.runtime.workers = 2;
  TestServer ts(scfg);
  Client client(client_config(ts.server.port()));

  struct Case {
    std::size_t m, k, n;
    tile::Dtype dtype;
    unsigned shift;
    tile::Mapping mapping;
  };
  const Case cases[] = {
      {8, 8, 8, tile::Dtype::kInt8, 0, tile::Mapping::kOutputStationary},
      {17, 9, 13, tile::Dtype::kInt16, 2,
       tile::Mapping::kWeightStationary},
      {24, 16, 24, tile::Dtype::kInt8, 5,
       tile::Mapping::kOutputStationary},
  };
  std::uint64_t seed = 0x5E4Eull;
  for (const Case& c : cases) {
    tile::GemmSpec spec;
    spec.m = c.m;
    spec.k = c.k;
    spec.n = c.n;
    spec.dtype = c.dtype;
    spec.shift = c.shift;
    spec.mapping = c.mapping;
    const auto a = tile::random_operand(spec.m * spec.k, spec.dtype, ++seed);
    const auto b = tile::random_operand(spec.k * spec.n, spec.dtype, ++seed);

    const RemoteGemmResult remote =
        client.submit_gemm(spec, a, b, kGeom, 128, 0xBEEF00 + seed);
    ASSERT_TRUE(remote.ok) << remote.error;
    EXPECT_EQ(remote.c, tile::gemm_reference(spec, a, b));

    rt::RuntimeConfig rcfg;
    rcfg.workers = 2;
    rt::Runtime local(rcfg);
    tile::GemmRunConfig gcfg;
    gcfg.geometry = kGeom;
    const tile::GemmResult direct = tile::run_gemm(local, gcfg, spec, a, b);
    EXPECT_EQ(remote.c, direct.c) << "served GEMM diverged from local";

    // The reply's observability slice matches the local scratchpad
    // behaviour exactly (same planner, same LRU policy).
    EXPECT_EQ(remote.counter("tile.scratch.hits"), direct.scratch_hits);
    EXPECT_EQ(remote.counter("tile.scratch.refills"),
              direct.scratch_refills);
    EXPECT_EQ(remote.counter("tile.jobs"), direct.jobs);
    EXPECT_EQ(remote.sim_cycles, direct.sim_cycles);
    EXPECT_EQ(remote.trace_id, 0xBEEF00 + seed);
  }

  ts.stop();
  const auto m = ts.server.metrics();
  EXPECT_EQ(m.find_counter("net.gemm.requests")->value(), 3u);
  EXPECT_GT(m.find_counter("net.gemm.tile_jobs")->value(), 0u);
  EXPECT_GT(m.find_counter("tile.scratch.hits")->value(), 0u);
  EXPECT_GT(m.find_counter("tile.scratch.bytes_saved")->value(), 0u);
  // One GEMM counts as one completed job, not one per tile.
  EXPECT_EQ(m.find_counter("net.jobs.completed")->value(), 3u);
}

TEST(TileServe, GemmInterleavesWithPlainJobsOnOneConnection) {
  ServerConfig scfg;
  scfg.runtime.workers = 2;
  TestServer ts(scfg);
  Client client(client_config(ts.server.port()));

  tile::GemmSpec spec;
  spec.m = 16;
  spec.k = 16;
  spec.n = 16;
  const auto a = tile::random_operand(spec.m * spec.k, spec.dtype, 1);
  const auto b = tile::random_operand(spec.k * spec.n, spec.dtype, 2);
  const auto want = tile::gemm_reference(spec, a, b);

  JobRequest fir;
  fir.kernel = KernelId::kFir;
  fir.geometry = kGeom;
  fir.fir_coeffs = {1, 2, 3, 4};
  fir.input = tile::random_operand(64, tile::Dtype::kInt8, 3);

  for (int round = 0; round < 3; ++round) {
    ASSERT_EQ(client.submit_gemm(spec, a, b, kGeom).c, want);
    ASSERT_TRUE(client.submit(fir).ok);
  }
}

TEST(TileServe, PreV4ClientsAreRefusedGemmMessages) {
  TestServer ts;
  tile::GemmSpec spec;  // 8x8x8
  const auto a = tile::random_operand(64, spec.dtype, 7);
  const auto b = tile::random_operand(64, spec.dtype, 8);

  // Client-side gate: a v3-pinned client refuses to encode the frame.
  {
    ClientConfig cfg = client_config(ts.server.port());
    cfg.protocol_version = 3;
    Client old_client(cfg);
    EXPECT_THROW((void)old_client.submit_gemm(spec, a, b, kGeom),
                 NetError);
    // The v3 dialect itself still works fine against the v4 server.
    EXPECT_GT(old_client.ping(), 0.0);
  }

  // Server-side gate: a hand-rolled frame carrying the v4 type inside
  // a v3 header answers Error{kBadRequest} and closes the connection.
  SubmitGemmMsg msg;
  msg.spec = spec;
  msg.geometry = kGeom;
  msg.a = a;
  msg.b = b;
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kSubmitGemm, encode_submit_gemm(msg), 3);
  RawConn raw(ts.server.port());
  raw.send_all(wire);
  Frame reply;
  ASSERT_TRUE(raw.recv_frame(reply));
  ASSERT_EQ(reply.type, MsgType::kError);
  const ErrorMsg err = decode_error(reply.payload, reply.version);
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  EXPECT_NE(err.message.find("protocol v4"), std::string::npos);
  EXPECT_TRUE(raw.recv_eof());
}

TEST(TileServe, UnlowerableGeometryAnswersBadRequestAndSurvives) {
  TestServer ts;
  Client client(client_config(ts.server.port()));

  tile::GemmSpec spec;  // 8x8x8
  const auto a = tile::random_operand(64, spec.dtype, 11);
  const auto b = tile::random_operand(64, spec.dtype, 12);
  // 2 layers x 2 lanes = 4 Dnodes: too few for the 8-row matvec page.
  const RemoteGemmResult r =
      client.submit_gemm(spec, a, b, RingGeometry{2, 2, 16});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("8 Dnodes"), std::string::npos) << r.error;

  // The connection survived the refusal; the same client runs the
  // request fine with a lowerable geometry.
  const RemoteGemmResult ok = client.submit_gemm(spec, a, b, kGeom);
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.c, tile::gemm_reference(spec, a, b));
}

}  // namespace
}  // namespace sring::net
