// Structural tests over the generated kernel programs: geometry
// contracts, page inventories, and generation determinism (the same
// inputs must produce byte-identical object code — a requirement for
// reproducible configware releases).
#include <gtest/gtest.h>

#include "asm/object_file.hpp"
#include "common/error.hpp"
#include "dsp/matvec.hpp"
#include "kernels/cordic_kernel.hpp"
#include "kernels/dwt_kernel.hpp"
#include "kernels/fifo_kernel.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/iir_kernel.hpp"
#include "kernels/mac_kernel.hpp"
#include "kernels/matvec_kernel.hpp"
#include "kernels/motion_estimation.hpp"

namespace sring::kernels {
namespace {

RingGeometry ring16() { return {8, 2, 16}; }

TEST(KernelPrograms, GeometryContractsEnforced) {
  const std::vector<Word> coeffs(3, 1);
  // Spatial FIR needs taps+1 layers and 2 lanes.
  EXPECT_THROW(make_spatial_fir_program({3, 2, 16}, coeffs), SimError);
  EXPECT_THROW(make_spatial_fir_program({8, 1, 16}, coeffs), SimError);
  // Serial FIR needs taps+1 layers.
  EXPECT_THROW(make_paged_serial_fir_program({3, 1, 16}, coeffs, 4),
               SimError);
  // Wordwise serial FIR is register-file bounded at 4 taps.
  const std::vector<Word> five(5, 1);
  EXPECT_THROW(make_wordwise_serial_fir_program(ring16(), five, 4),
               SimError);
  // IIR needs the downstream pipeline.
  EXPECT_THROW(make_iir1_program({1, 1, 16}, 1), SimError);
  // DWT needs the full 8x2 arrangement and depth-7 reads.
  EXPECT_THROW(make_dwt53_program({4, 2, 16}), SimError);
  EXPECT_THROW(make_dwt53_program({8, 2, 4}), SimError);
  EXPECT_THROW(make_idwt53_program({8, 1, 16}), SimError);
  // SAD engine needs two lanes per unit.
  EXPECT_THROW(make_sad_engine_program({8, 1, 16}, 64, 2), SimError);
  // Matvec needs eight Dnodes.
  EXPECT_THROW(make_matvec8_program({2, 2, 16}, dsp::dct8_matrix_q7(), 1),
               SimError);
  // CORDIC needs the three-unit column.
  EXPECT_THROW(make_cordic_program({2, 2, 16}, 1), SimError);
}

TEST(KernelPrograms, PageInventories) {
  // The SAD engine carries exactly work/drain/emit/reset pages.
  EXPECT_EQ(make_sad_engine_program(ring16(), 64, 4).pages.size(), 4u);
  // Serial FIR: shift + one page per tap + idle.
  const std::vector<Word> taps3(3, 2);
  EXPECT_EQ(make_paged_serial_fir_program(ring16(), taps3, 4).pages.size(),
            3u + 2u);
  // CORDIC: idle + load + emit + 4 pages per iteration.
  EXPECT_EQ(make_cordic_program(ring16(), 1, 12).pages.size(),
            3u + 4u * 12u);
  // Matvec: idle + 8 element pages.
  EXPECT_EQ(
      make_matvec8_program(ring16(), dsp::dct8_matrix_q7(), 1).pages.size(),
      9u);
  // LIFO: idle + write + one read page per block element.
  EXPECT_EQ(make_lifo_program(ring16(), 5, 2).pages.size(), 2u + 5u);
  // Single-page streaming kernels.
  EXPECT_EQ(make_dwt53_program(ring16()).pages.size(), 1u);
  EXPECT_EQ(make_running_mac_program(ring16()).pages.size(), 1u);
}

TEST(KernelPrograms, GenerationIsDeterministic) {
  const std::vector<Word> coeffs = {1, to_word(-2), 3};
  const auto a =
      serialize_program(make_spatial_fir_program(ring16(), coeffs));
  const auto b =
      serialize_program(make_spatial_fir_program(ring16(), coeffs));
  EXPECT_EQ(a, b);

  const auto c = serialize_program(make_cordic_program(ring16(), 7));
  const auto d = serialize_program(make_cordic_program(ring16(), 7));
  EXPECT_EQ(c, d);
}

TEST(KernelPrograms, SurviveObjectFormatAndReload) {
  // Every generator's output must round-trip the binary object format.
  const std::vector<Word> coeffs = {1, 2};
  const LoadableProgram programs[] = {
      make_running_mac_program(ring16()),
      make_spatial_fir_program(ring16(), coeffs),
      make_paged_serial_fir_program(ring16(), coeffs, 3),
      make_iir1_program(ring16(), 3),
      make_iir2_program(ring16(), 1, 2, to_word(-1)),
      make_fifo_program(ring16(), 5),
      make_lifo_program(ring16(), 4, 2),
      make_sad_engine_program(ring16(), 64, 2),
      make_dwt53_program(ring16()),
      make_idwt53_program(ring16()),
      make_matvec8_program(ring16(), dsp::dct8_matrix_q7(), 2),
      make_cordic_program(ring16(), 3),
  };
  for (const auto& p : programs) {
    EXPECT_EQ(deserialize_program(serialize_program(p)), p) << p.name;
  }
}

TEST(KernelPrograms, NamesAreStable) {
  EXPECT_EQ(make_running_mac_program(ring16()).name, "running_mac");
  EXPECT_EQ(make_dwt53_program(ring16()).name, "dwt53_lifting");
  EXPECT_EQ(make_cordic_program(ring16(), 1).name, "cordic_rotate");
}

}  // namespace
}  // namespace sring::kernels
