// Loopback integration tests of the remote job-serving subsystem:
// bit-exactness of every kernels/jobs kernel against direct
// rt::Runtime execution, bounded backpressure (Busy), SimError text
// travelling verbatim, survival under malformed/truncated bytes, idle
// reaping, drain semantics, and client connect-retry.  Every socket
// carries a receive deadline so a regression fails instead of hanging.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/image.hpp"
#include "common/rng.hpp"
#include "dsp/matvec.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "rt/runtime.hpp"

namespace sring::net {
namespace {

constexpr RingGeometry kGeom{8, 2, 16};

/// Server + run() thread with drain-on-destruction, so a failing
/// assertion never leaves the loop thread dangling.
struct TestServer {
  explicit TestServer(ServerConfig cfg = {})
      : server(std::move(cfg)), thread([this] { server.run(); }) {}
  ~TestServer() { stop(); }

  void stop() {
    if (thread.joinable()) {
      server.request_drain();
      thread.join();
    }
  }

  Server server;
  std::thread thread;
};

/// Minimal blocking socket for byte-level tests the Client class is
/// deliberately unable to express (pipelining, garbage, half frames).
class RawConn {
 public:
  /// rcvbuf_bytes > 0 shrinks SO_RCVBUF before connect — models a peer
  /// that accepts responses far slower than the server produces them.
  explicit RawConn(std::uint16_t port, int rcvbuf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    check(fd_ >= 0, "test: socket() failed");
    if (rcvbuf_bytes > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes));
    }
    timeval tv{};
    tv.tv_sec = 10;  // receive deadline: fail, don't hang
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    check(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0,
          "test: connect() failed: " + std::string(std::strerror(errno)));
  }
  ~RawConn() { close(); }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void send_all(std::span<const std::uint8_t> bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << std::strerror(errno);
      sent += static_cast<std::size_t>(n);
    }
  }

  void send_frame(MsgType type, std::span<const std::uint8_t> payload) {
    std::vector<std::uint8_t> wire;
    append_frame(wire, type, payload);
    send_all(wire);
  }

  /// Next complete frame; false on orderly EOF or deadline.
  bool recv_frame(Frame& out) {
    std::uint8_t chunk[4096];
    while (true) {
      std::size_t consumed = 0;
      const ParseStatus status =
          try_parse_frame(in_, kDefaultMaxFrameBytes, out, consumed);
      if (status == ParseStatus::kFrame) {
        in_.erase(in_.begin(),
                  in_.begin() + static_cast<std::ptrdiff_t>(consumed));
        return true;
      }
      EXPECT_EQ(status, ParseStatus::kNeedMore);
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      in_.insert(in_.end(), chunk, chunk + n);
    }
  }

  /// True when the server closes without sending anything further.
  bool recv_eof() {
    std::uint8_t chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    return n == 0;
  }

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> in_;
};

/// One deterministic request per kernels/jobs kernel.
std::vector<JobRequest> all_kernel_requests() {
  std::vector<JobRequest> reqs;

  JobRequest fir;
  fir.kernel = KernelId::kFir;
  fir.geometry = kGeom;
  fir.fir_coeffs = {1, static_cast<Word>(-2), 3, 4};
  fir.input.resize(96);
  Rng rng(0xBEEF);
  for (auto& w : fir.input) w = rng.next_word_in(-128, 127);
  reqs.push_back(std::move(fir));

  JobRequest me;
  me.kernel = KernelId::kMotionEstimation;
  me.geometry = kGeom;
  me.me_ref = Image::synthetic(16, 16, 7);
  me.me_cand = Image::shifted(me.me_ref, 1, -1, 11, 2);
  me.me_rx = 4;
  me.me_ry = 4;
  me.me_range = 2;
  reqs.push_back(std::move(me));

  JobRequest dwt;
  dwt.kernel = KernelId::kDwt53;
  dwt.geometry = kGeom;
  dwt.input.resize(64);
  for (auto& w : dwt.input) w = rng.next_word_in(-128, 127);
  reqs.push_back(std::move(dwt));

  JobRequest mv;
  mv.kernel = KernelId::kMatvec8;
  mv.geometry = kGeom;
  for (const auto& row : dsp::dct8_matrix_q7()) {
    mv.matvec_m.insert(mv.matvec_m.end(), row.begin(), row.end());
  }
  mv.input.resize(32);
  for (auto& w : mv.input) w = rng.next_word_in(-64, 63);
  reqs.push_back(std::move(mv));

  return reqs;
}

ClientConfig client_config(std::uint16_t port) {
  ClientConfig cfg;
  cfg.port = port;
  cfg.io_timeout_ms = 10000;  // deadline, not a hang
  return cfg;
}

// The acceptance bar of the subsystem: for every kernel the jobs
// factories expose, the remote path returns the exact words a direct
// rt::Runtime run returns.
TEST(NetServer, RoundTripAllKernelsBitExact) {
  const std::vector<JobRequest> reqs = all_kernel_requests();

  std::vector<rt::JobResult> expected;
  {
    rt::RuntimeConfig cfg;
    cfg.workers = 2;
    rt::Runtime local(cfg);
    std::vector<rt::Job> jobs;
    for (const auto& req : reqs) jobs.push_back(to_rt_job(req));
    expected = local.submit_batch(std::move(jobs));
  }

  ServerConfig scfg;
  scfg.runtime.workers = 2;
  TestServer ts(scfg);
  Client client(client_config(ts.server.port()));
  const std::vector<RemoteResult> remote = client.submit_batch(reqs);

  ASSERT_EQ(remote.size(), expected.size());
  for (std::size_t i = 0; i < remote.size(); ++i) {
    ASSERT_TRUE(expected[i].ok) << expected[i].error;
    ASSERT_TRUE(remote[i].ok) << remote[i].error;
    EXPECT_EQ(remote[i].outputs, expected[i].outputs)
        << "kernel " << i << " diverged across the wire";
    EXPECT_EQ(remote[i].sim_cycles, expected[i].report.stats.cycles);
    // The per-job observability slice rides along and is consistent.
    bool saw_cycles = false;
    for (const auto& [name, value] : remote[i].counters) {
      if (name == "sim.cycles") {
        saw_cycles = true;
        EXPECT_EQ(value, remote[i].sim_cycles);
      }
    }
    EXPECT_TRUE(saw_cycles);
  }

  ts.stop();
  const auto m = ts.server.metrics();
  EXPECT_EQ(m.find_counter("net.jobs.completed")->value(), reqs.size());
  EXPECT_EQ(m.find_counter("net.jobs.failed")->value(), 0u);
}

TEST(NetServer, PingAndServerInfo) {
  ServerConfig scfg;
  scfg.runtime.workers = 1;
  scfg.runtime.queue_capacity = 7;
  TestServer ts(scfg);

  Client client(client_config(ts.server.port()));
  EXPECT_GT(client.ping(), 0.0);

  const ServerInfoMsg info = client.server_info();
  EXPECT_EQ(info.protocol_version, kProtocolVersion);
  EXPECT_EQ(info.workers, 1u);
  EXPECT_EQ(info.queue_capacity, 7u);
  EXPECT_EQ(info.max_frame_bytes, kDefaultMaxFrameBytes);
  EXPECT_EQ(info.server, "sring-serve");
}

// Bounded backpressure: with workers=1, queue=1 and a fat job at the
// head, a pipelined burst must see Error{kBusy} — and the accepted
// jobs must still come back bit-exact.
TEST(NetServer, QueueFullAnswersBusyWithoutBlocking) {
  JobRequest big;
  big.kernel = KernelId::kFir;
  big.geometry = kGeom;
  big.fir_coeffs = {1, 2};
  big.input.resize(65536);
  for (std::size_t i = 0; i < big.input.size(); ++i) {
    big.input[i] = static_cast<Word>(i & 0x7F);
  }
  std::vector<Word> expected;
  {
    rt::Runtime local;
    rt::JobResult r = local.submit(to_rt_job(big)).get();
    ASSERT_TRUE(r.ok) << r.error;
    expected = std::move(r.outputs);
  }

  ServerConfig scfg;
  scfg.runtime.workers = 1;
  scfg.runtime.queue_capacity = 1;
  TestServer ts(scfg);

  // Pipeline 8 identical submits in one burst: the worker is stuck on
  // the first for milliseconds while the loop decodes microsecond-cheap
  // frames, so the tiny queue must overflow.
  constexpr std::uint32_t kBurst = 8;
  RawConn raw(ts.server.port());
  std::vector<std::uint8_t> wire;
  for (std::uint32_t tag = 1; tag <= kBurst; ++tag) {
    big.tag = tag;
    append_frame(wire, MsgType::kSubmitJob, encode_job_request(big));
  }
  raw.send_all(wire);

  std::size_t results = 0;
  std::size_t busy = 0;
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    Frame frame;
    ASSERT_TRUE(raw.recv_frame(frame)) << "response " << i << " missing";
    if (frame.type == MsgType::kJobResult) {
      const JobResultMsg msg = decode_job_result(frame.payload);
      EXPECT_EQ(msg.outputs, expected);
      ++results;
    } else {
      ASSERT_EQ(frame.type, MsgType::kError);
      const ErrorMsg err = decode_error(frame.payload);
      EXPECT_EQ(err.code, ErrorCode::kBusy);
      EXPECT_FALSE(err.message.empty());
      ++busy;
    }
  }
  EXPECT_GE(busy, 1u) << "capacity-1 queue absorbed an 8-deep burst";
  // At least the head job is accepted; whether the queue slot is free
  // again for a later submit races against the worker's dequeue.
  EXPECT_GE(results, 1u);
  EXPECT_EQ(results + busy, kBurst);
  raw.close();

  ts.stop();
  const auto m = ts.server.metrics();
  EXPECT_EQ(m.find_counter("net.rejects.busy")->value(), busy);
  EXPECT_EQ(m.find_counter("net.jobs.completed")->value(), results);
}

// A request the jobs factories reject raises a SimError on the server;
// the client must see the identical text, and the connection must stay
// usable afterwards.
TEST(NetServer, SimErrorTextTravelsVerbatim) {
  JobRequest bad;
  bad.kernel = KernelId::kDwt53;
  bad.geometry = kGeom;
  bad.input = {1, 2, 3};  // dwt53 requires an even-length signal

  std::string local_text;
  try {
    (void)to_rt_job(bad);
    FAIL() << "odd-length dwt request unexpectedly built a job";
  } catch (const SimError& e) {
    local_text = e.what();
  }

  TestServer ts;
  Client client(client_config(ts.server.port()));
  const RemoteResult r = client.submit(bad);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.busy);
  EXPECT_EQ(r.error, local_text);

  // Same connection, next request: the server only closed the job, not
  // the conversation.
  EXPECT_GT(client.ping(), 0.0);
}

// A tiny valid frame declaring a huge motion-estimation search range
// must come back as Error{kBadRequest} — not allocate O(range^2)
// memory on the poll thread and crash the server.
TEST(NetServer, MotionRangeBombAnswersBadRequestAndSurvives) {
  TestServer ts;
  Client client(client_config(ts.server.port()));

  JobRequest bomb;
  bomb.kernel = KernelId::kMotionEstimation;
  bomb.geometry = kGeom;
  bomb.me_ref = Image::synthetic(16, 16, 7);
  bomb.me_cand = Image::shifted(bomb.me_ref, 1, -1, 11, 2);
  bomb.me_rx = 4;
  bomb.me_ry = 4;
  bomb.me_range = 0xFFFF;

  const RemoteResult r = client.submit(bomb);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.busy);
  EXPECT_NE(r.error.find("range"), std::string::npos) << r.error;

  // The server shrugged it off and keeps serving on the same socket.
  EXPECT_GT(client.ping(), 0.0);
  const RemoteResult good = client.submit(all_kernel_requests()[1]);
  EXPECT_TRUE(good.ok) << good.error;
}

/// A wire image that stuffs the server's per-connection output buffer
/// well past what the loopback socket buffers can absorb: pings whose
/// pongs the caller never reads.  The count must outsize the kernel's
/// send buffer autotuning (tcp_wmem max, commonly 4 MB) or the pongs
/// never back up into the server's userland buffer.  Build this BEFORE
/// connecting — constructing megabytes can outlast a short
/// idle_timeout, and a silent fresh connection is fair reaping game.
std::vector<std::uint8_t> flood_ping_wire() {
  constexpr std::size_t kFloodPings = 300000;  // ~7 MB of pongs
  std::vector<std::uint8_t> wire;
  for (std::size_t i = 0; i < kFloodPings; ++i) {
    append_frame(wire, MsgType::kPing, encode_ping(i));
  }
  return wire;
}

// A peer that sends requests but never reads its responses must not
// hold graceful drain open forever; the flush phase has a deadline.
TEST(NetServer, DrainForceClosesPeersThatNeverRead) {
  const std::vector<std::uint8_t> wire = flood_ping_wire();
  ServerConfig scfg;
  scfg.drain_flush_timeout = std::chrono::milliseconds(200);
  TestServer ts(scfg);

  RawConn raw(ts.server.port(), /*rcvbuf_bytes=*/4096);
  raw.send_all(wire);
  // Let the loop turn the flood into buffered responses.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  ts.server.request_drain();
  auto joined = std::async(std::launch::async, [&ts] { ts.stop(); });
  ASSERT_EQ(joined.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "drain hung on a peer with an unread output buffer";
}

// Same never-reading peer outside a drain: once it is flagged closing
// (garbage after the flood), the idle timeout must reap it instead of
// waiting forever for the flush.
TEST(NetServer, ClosingConnThatNeverReadsIsReaped) {
  const std::vector<std::uint8_t> wire = flood_ping_wire();
  ServerConfig scfg;
  scfg.idle_timeout = std::chrono::milliseconds(100);
  TestServer ts(scfg);

  RawConn raw(ts.server.port(), /*rcvbuf_bytes=*/4096);
  raw.send_all(wire);
  const auto garbage = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>("????"), 4);
  raw.send_all(garbage);  // closing=true with ~1.4 MB still unflushed

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ts.server.metrics().find_counter("net.timeouts")->value() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "closing connection with unread output was never reaped";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ts.stop();
}

TEST(NetServer, GarbageBytesAnswerErrorAndClose) {
  TestServer ts;
  {
    RawConn raw(ts.server.port());
    const char* garbage = "GET / HTTP/1.1\r\nHost: sring\r\n\r\n";
    raw.send_all(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(garbage),
        std::strlen(garbage)));
    Frame frame;
    ASSERT_TRUE(raw.recv_frame(frame));
    ASSERT_EQ(frame.type, MsgType::kError);
    const ErrorMsg err = decode_error(frame.payload);
    EXPECT_EQ(err.code, ErrorCode::kBadRequest);
    EXPECT_TRUE(raw.recv_eof());
  }
  // The server survived the garbage and serves the next client.
  Client client(client_config(ts.server.port()));
  EXPECT_GT(client.ping(), 0.0);
}

TEST(NetServer, CrcMismatchAnswersErrorAndClose) {
  TestServer ts;
  RawConn raw(ts.server.port());
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kPing, encode_ping(12345));
  wire[kHeaderBytes] ^= 0x01;
  raw.send_all(wire);
  Frame frame;
  ASSERT_TRUE(raw.recv_frame(frame));
  ASSERT_EQ(frame.type, MsgType::kError);
  const ErrorMsg err = decode_error(frame.payload);
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  EXPECT_NE(err.message.find("CRC"), std::string::npos);
  EXPECT_TRUE(raw.recv_eof());
}

TEST(NetServer, OversizedFrameRejectedFromHeader) {
  TestServer ts;
  RawConn raw(ts.server.port());
  std::vector<std::uint8_t> wire;
  append_frame(wire, MsgType::kSubmitJob, encode_ping(0));
  wire[8] = 0xFF;  // declared payload length -> ~2 GiB
  wire[9] = 0xFF;
  wire[10] = 0xFF;
  wire[11] = 0x7F;
  raw.send_all(std::span<const std::uint8_t>(wire.data(), kHeaderBytes));
  Frame frame;
  ASSERT_TRUE(raw.recv_frame(frame));
  ASSERT_EQ(frame.type, MsgType::kError);
  EXPECT_EQ(decode_error(frame.payload).code, ErrorCode::kBadRequest);
  EXPECT_TRUE(raw.recv_eof());
}

TEST(NetServer, MidFrameDisconnectLeavesServerHealthy) {
  TestServer ts;
  {
    RawConn raw(ts.server.port());
    std::vector<std::uint8_t> wire;
    append_frame(wire, MsgType::kSubmitJob,
                 encode_job_request(all_kernel_requests()[0]));
    // Half a frame, then vanish.
    raw.send_all(std::span<const std::uint8_t>(wire.data(), wire.size() / 2));
    raw.close();
  }
  Client client(client_config(ts.server.port()));
  EXPECT_GT(client.ping(), 0.0);
  const RemoteResult r = client.submit(all_kernel_requests()[2]);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(NetServer, IdleConnectionsAreReaped) {
  ServerConfig scfg;
  scfg.idle_timeout = std::chrono::milliseconds(100);
  TestServer ts(scfg);
  RawConn raw(ts.server.port());
  // Say nothing; the server must hang up within a few poll ticks.
  EXPECT_TRUE(raw.recv_eof());
  ts.stop();
  EXPECT_GE(ts.server.metrics().find_counter("net.timeouts")->value(), 1u);
}

TEST(NetServer, DrainAcksStopsAcceptingAndExits) {
  auto ts = std::make_unique<TestServer>();
  const std::uint16_t port = ts->server.port();

  Client client(client_config(port));
  const RemoteResult r = client.submit(all_kernel_requests()[0]);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(client.drain());

  // run() returns on its own — stop() only joins here.
  ts->stop();
  EXPECT_GE(ts->server.metrics().find_counter("net.drains")->value(), 1u);
  ts.reset();

  // The listening socket is gone: a fresh connect must fail fast.
  ClientConfig ccfg = client_config(port);
  ccfg.connect_attempts = 2;
  ccfg.backoff_initial_ms = 1;
  Client late(ccfg);
  EXPECT_THROW(late.connect(), NetError);
}

TEST(NetClient, ConnectRetriesThenThrowsTyped) {
  // Grab an ephemeral port, then free it: nobody is listening there.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  ClientConfig cfg;
  cfg.port = dead_port;
  cfg.connect_attempts = 3;
  cfg.backoff_initial_ms = 1;
  Client client(cfg);
  EXPECT_THROW(client.connect(), NetError);
  EXPECT_FALSE(client.connected());
}

// ---- live telemetry over the wire -----------------------------------

// GetStats against a loaded server: one consistent snapshot carrying
// shape, cumulative counters, per-phase latency quantiles and — once a
// sampler window catches completions in flight — nonzero rates.
TEST(NetServerStats, SnapshotUnderLoadCarriesQuantilesAndRates) {
  ServerConfig scfg;
  scfg.runtime.workers = 2;
  scfg.runtime.queue_capacity = 9;
  scfg.sample_interval = std::chrono::milliseconds(20);
  TestServer ts(scfg);
  Client client(client_config(ts.server.port()));

  const std::vector<JobRequest> reqs = all_kernel_requests();
  std::size_t completed = 0;
  StatsReplyMsg s;
  bool saw_rate = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  // Keep the server busy until a sampler interval contains completions;
  // rates derive from the newest delta window, so an idle tail would
  // legitimately read 0.
  while (!saw_rate) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "sampler never produced a nonzero completion rate";
    for (const RemoteResult& r : client.submit_batch(reqs)) {
      ASSERT_TRUE(r.ok) << r.error;
      ++completed;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    s = client.stats();
    for (const auto& [name, per_sec] : s.rates) {
      if (name == "net.jobs.completed" && per_sec > 0.0) saw_rate = true;
    }
  }

  EXPECT_GT(s.uptime_us, 0u);
  EXPECT_EQ(s.workers, 2u);
  EXPECT_EQ(s.queue_capacity, 9u);
  EXPECT_GE(s.worker_utilization, 0.0);
  EXPECT_LE(s.worker_utilization, 1.0);

  std::uint64_t counter_completed = 0;
  for (const auto& [name, value] : s.counters) {
    if (name == "net.jobs.completed") counter_completed = value;
  }
  EXPECT_EQ(counter_completed, completed);

  // Every pipeline phase shows up with one sample per completed job,
  // and its quantiles are ordered the way quantiles must be.
  for (const char* name :
       {"net.latency.queue_wait_us", "net.latency.arm_us",
        "net.latency.execute_us", "net.latency.serialize_us",
        "net.latency.e2e_us"}) {
    const StatsQuantileMsg* q = nullptr;
    for (const auto& lat : s.latencies) {
      if (lat.name == name) q = &lat;
    }
    ASSERT_NE(q, nullptr) << name << " missing from the stats reply";
    EXPECT_EQ(q->count, completed) << name;
    EXPECT_LE(q->p50_us, q->p90_us) << name;
    EXPECT_LE(q->p90_us, q->p99_us) << name;
    EXPECT_LE(q->p99_us, static_cast<double>(q->max_us)) << name;
  }
  // A simulated kernel does not execute in zero microseconds.
  for (const auto& lat : s.latencies) {
    if (lat.name == "net.latency.e2e_us") {
      EXPECT_GT(lat.max_us, 0u);
    }
  }
}

// A deliberately slow job must land in the flight recorder with its
// full span timeline and the caller's trace id, and come back over the
// wire when the stats request asks for the flight ring.
TEST(NetServerStats, SlowJobIsCapturedInFlightWithFullTimeline) {
  ServerConfig scfg;
  scfg.slow_threshold_us = 1;  // a multi-ms sim job is always "slow"
  TestServer ts(scfg);
  Client client(client_config(ts.server.port()));

  JobRequest big;
  big.kernel = KernelId::kFir;
  big.geometry = kGeom;
  big.fir_coeffs = {1, 2, 3};
  big.input.resize(65536);
  for (std::size_t i = 0; i < big.input.size(); ++i) {
    big.input[i] = static_cast<Word>(i & 0x7F);
  }
  big.trace_id = 0xC0FFEE;
  const RemoteResult r = client.submit(big);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.trace_id, 0xC0FFEE);
  EXPECT_GT(r.execute_us, 0u);
  EXPECT_GE(r.total_us, r.execute_us);

  const StatsReplyMsg s = client.stats(/*include_flight=*/true);
  const obs::SpanRecord* rec = nullptr;
  for (const auto& span : s.flight) {
    if (span.trace_id == 0xC0FFEE) rec = &span;
  }
  ASSERT_NE(rec, nullptr) << "slow job missing from the flight ring";
  EXPECT_TRUE(rec->ok);
  EXPECT_TRUE(rec->slow);
  EXPECT_FALSE(rec->name.empty());
  EXPECT_GT(rec->sim_cycles, 0u);
  EXPECT_GT(rec->execute_us, 0u);
  EXPECT_GE(rec->e2e_us, rec->execute_us);
  // The wire telemetry tail and the recorder describe the same job.
  EXPECT_EQ(rec->execute_us, r.execute_us);
}

// A v1 client against the v2 server: byte-identical request layout,
// byte-identical results, no telemetry tail — and no GetStats.
TEST(NetServerStats, V1ClientsRoundTripWithoutTelemetryTails) {
  const std::vector<JobRequest> reqs = all_kernel_requests();
  std::vector<rt::JobResult> expected;
  {
    rt::RuntimeConfig cfg;
    cfg.workers = 2;
    rt::Runtime local(cfg);
    std::vector<rt::Job> jobs;
    for (const auto& req : reqs) jobs.push_back(to_rt_job(req));
    expected = local.submit_batch(std::move(jobs));
  }

  ServerConfig scfg;
  scfg.runtime.workers = 2;
  TestServer ts(scfg);
  ClientConfig ccfg = client_config(ts.server.port());
  ccfg.protocol_version = 1;
  Client v1(ccfg);

  const std::vector<RemoteResult> remote = v1.submit_batch(reqs);
  ASSERT_EQ(remote.size(), expected.size());
  for (std::size_t i = 0; i < remote.size(); ++i) {
    ASSERT_TRUE(remote[i].ok) << remote[i].error;
    EXPECT_EQ(remote[i].outputs, expected[i].outputs);
    // v1 frames have no room for the telemetry tail: all zeros.
    EXPECT_EQ(remote[i].trace_id, 0u);
    EXPECT_EQ(remote[i].queue_wait_us, 0u);
    EXPECT_EQ(remote[i].execute_us, 0u);
    EXPECT_EQ(remote[i].total_us, 0u);
  }
  EXPECT_THROW((void)v1.stats(), NetError);
}

// With a flight_dump_path configured, draining the server writes the
// captured ring as JSONL — the post-mortem artifact for a crash-loop
// or a slow-request investigation.
TEST(NetServerStats, DrainWritesTheFlightDump) {
  const std::string path = "test_net_server_flight_dump.jsonl";
  std::remove(path.c_str());

  {
    ServerConfig scfg;
    scfg.slow_threshold_us = 1;
    scfg.flight_dump_path = path;
    TestServer ts(scfg);
    Client client(client_config(ts.server.port()));
    JobRequest req = all_kernel_requests()[0];
    req.trace_id = 0xD00D;
    ASSERT_TRUE(client.submit(req).ok);
    EXPECT_TRUE(client.drain());
    ts.stop();  // run() returned on its own; join + dump happened
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "drain did not write " << path;
  std::string line;
  bool found = false;
  while (std::getline(in, line)) {
    if (line.find("\"trace_id\":53261") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << "captured job missing from the flight dump";
  in.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sring::net
