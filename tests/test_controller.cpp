// Unit tests for the RISC configuration controller.
#include <gtest/gtest.h>

#include <vector>

#include "asm/program_builder.hpp"
#include "common/error.hpp"
#include "ctrl/controller.hpp"

namespace sring {
namespace {

struct Harness {
  Harness() : cfg({2, 2, 8}), ring({2, 2, 8}) {}

  Controller::StepResult step() {
    const Controller::StepContext ctx{cfg, ring, bus, in, out, cycle};
    auto res = ctrl.step(ctx);
    if (res.bus_drive) bus = *res.bus_drive;
    ++cycle;
    return res;
  }

  /// Run until halt, with a safety bound.
  void run(int max_cycles = 10000) {
    for (int i = 0; i < max_cycles && !ctrl.halted(); ++i) step();
    ASSERT_TRUE(ctrl.halted()) << "program did not halt";
  }

  Controller ctrl;
  ConfigMemory cfg;
  Ring ring;
  Word bus = 0;
  HostFifo in;
  std::vector<Word> out;
  std::uint64_t cycle = 0;
};

std::vector<std::uint32_t> code(std::initializer_list<RiscInstr> instrs) {
  std::vector<std::uint32_t> words;
  for (const auto& i : instrs) words.push_back(i.encode());
  return words;
}

TEST(Controller, ArithmeticAndMoves) {
  Harness h;
  h.ctrl.load_program(code({
      {RiscOp::kLdi, 1, 0, 0, 100},
      {RiscOp::kLdi, 2, 0, 0, -3},
      {RiscOp::kAdd, 3, 1, 2, 0},
      {RiscOp::kSub, 4, 1, 2, 0},
      {RiscOp::kMul, 5, 1, 2, 0},
      {RiscOp::kMov, 6, 5, 0, 0},
      {RiscOp::kHalt, 0, 0, 0, 0},
  }));
  h.run();
  EXPECT_EQ(h.ctrl.reg(3), 97u);
  EXPECT_EQ(h.ctrl.reg(4), 103u);
  EXPECT_EQ(static_cast<std::int64_t>(h.ctrl.reg(5)), -300);
  EXPECT_EQ(h.ctrl.reg(6), h.ctrl.reg(5));
}

TEST(Controller, LogicAndShifts) {
  Harness h;
  h.ctrl.load_program(code({
      {RiscOp::kLdi, 1, 0, 0, 0x0FF0},
      {RiscOp::kLdi, 2, 0, 0, 0x00FF},
      {RiscOp::kAnd, 3, 1, 2, 0},
      {RiscOp::kOr, 4, 1, 2, 0},
      {RiscOp::kXor, 5, 1, 2, 0},
      {RiscOp::kLdi, 6, 0, 0, 4},
      {RiscOp::kShl, 7, 2, 6, 0},
      {RiscOp::kShr, 8, 1, 6, 0},
      {RiscOp::kLdi, 9, 0, 0, -16},
      {RiscOp::kAsr, 10, 9, 6, 0},
      {RiscOp::kHalt, 0, 0, 0, 0},
  }));
  h.run();
  EXPECT_EQ(h.ctrl.reg(3), 0x00F0u);
  EXPECT_EQ(h.ctrl.reg(4), 0x0FFFu);
  EXPECT_EQ(h.ctrl.reg(5), 0x0F0Fu);
  EXPECT_EQ(h.ctrl.reg(7), 0x0FF0u);
  EXPECT_EQ(h.ctrl.reg(8), 0x00FFu);
  EXPECT_EQ(static_cast<std::int64_t>(h.ctrl.reg(10)), -1);
}

TEST(Controller, LdihBuildsWideConstants) {
  Harness h;
  h.ctrl.load_program(code({
      {RiscOp::kLdi, 1, 0, 0, 0x1234},
      {RiscOp::kLdih, 1, 0, 0, 0x5678},
      {RiscOp::kLdih, 1, 0, 0, static_cast<std::int32_t>(0x9ABC) - 65536},
      {RiscOp::kHalt, 0, 0, 0, 0},
  }));
  h.run();
  EXPECT_EQ(h.ctrl.reg(1), 0x123456789ABCull);
}

TEST(Controller, BranchesAndLoop) {
  // Sum 1..10 with a BLT loop.
  Harness h;
  ProgramBuilder pb({2, 2, 8}, "loop");
  pb.ldi(1, 0);    // acc
  pb.ldi(2, 1);    // i
  pb.ldi(3, 11);   // bound
  pb.label("loop");
  pb.alu(RiscOp::kAdd, 1, 1, 2);
  pb.addi(2, 2, 1);
  pb.branch(RiscOp::kBlt, 2, 3, "loop");
  pb.halt();
  h.ctrl.load_program(pb.build().controller_code);
  h.run();
  EXPECT_EQ(h.ctrl.reg(1), 55u);
}

TEST(Controller, WaitStallsForExactCycles) {
  Harness h;
  h.ctrl.load_program(code({
      {RiscOp::kWait, 0, 0, 0, 5},
      {RiscOp::kHalt, 0, 0, 0, 0},
  }));
  int cycles = 0;
  while (!h.ctrl.halted()) {
    h.step();
    ++cycles;
  }
  // WAIT 5 occupies 5 cycles, HALT 1.
  EXPECT_EQ(cycles, 6);
}

TEST(Controller, InpopStallsUntilDataArrives) {
  Harness h;
  h.ctrl.load_program(code({
      {RiscOp::kInpop, 1, 0, 0, 0},
      {RiscOp::kOutpush, 0, 1, 0, 0},
      {RiscOp::kHalt, 0, 0, 0, 0},
  }));
  auto r1 = h.step();
  EXPECT_TRUE(r1.stalled);
  EXPECT_EQ(h.ctrl.pc(), 0u);
  h.in.push_back(to_word(9));
  h.step();
  EXPECT_EQ(h.ctrl.reg(1), 9u);
  h.step();
  ASSERT_EQ(h.out.size(), 1u);
  EXPECT_EQ(h.out[0], 9u);
}

TEST(Controller, ConfigWrites) {
  Harness h;
  DnodeInstr instr;
  instr.op = DnodeOp::kAdd;
  instr.src_a = DnodeSrc::kIn1;
  instr.src_b = DnodeSrc::kIn2;
  instr.out_en = true;
  SwitchRoute route;
  route.in1 = PortRoute::prev(1);

  ProgramBuilder pb({2, 2, 8}, "cfg");
  pb.wrcfg(3, instr);
  pb.wrmode(2, DnodeMode::kLocal);
  pb.wrsw(1, 1, route);
  pb.wrloc(1, 0, instr.encode());
  pb.wrloc(1, LocalControl::kLimitSlot, 0);
  pb.halt();
  h.ctrl.load_program(pb.build().controller_code);
  h.run();
  EXPECT_EQ(h.cfg.dnode_instr(3), instr);
  EXPECT_EQ(h.cfg.dnode_mode(2), DnodeMode::kLocal);
  EXPECT_EQ(h.cfg.switch_route(1, 1), route);
  EXPECT_EQ(h.ring.dnode_flat(1).local().current(), instr);
}

TEST(Controller, PageApplication) {
  Harness h;
  ConfigPage page = ConfigPage::zeroed({2, 2, 8});
  DnodeInstr instr;
  instr.op = DnodeOp::kNot;
  instr.src_a = DnodeSrc::kIn1;
  instr.out_en = true;
  page.dnode_instr[0] = instr.encode();
  h.cfg.add_page(page);
  h.ctrl.load_program(code({
      {RiscOp::kPage, 0, 0, 0, 0},
      {RiscOp::kHalt, 0, 0, 0, 0},
  }));
  h.run();
  EXPECT_EQ(h.cfg.dnode_instr(0), instr);
}

TEST(Controller, PagerUsesRegisterIndex) {
  Harness h;
  h.cfg.add_page(ConfigPage::zeroed({2, 2, 8}));
  h.ctrl.load_program(code({
      {RiscOp::kLdi, 1, 0, 0, 0},
      {RiscOp::kPager, 0, 1, 0, 0},
      {RiscOp::kHalt, 0, 0, 0, 0},
  }));
  h.run();
  EXPECT_GT(h.cfg.words_written(), 0u);
}

TEST(Controller, BusReadWrite) {
  Harness h;
  h.ctrl.load_program(code({
      {RiscOp::kLdi, 1, 0, 0, 321},
      {RiscOp::kBusw, 0, 1, 0, 0},
      {RiscOp::kRdbus, 2, 0, 0, 0},
      {RiscOp::kHalt, 0, 0, 0, 0},
  }));
  h.run();
  EXPECT_EQ(h.ctrl.reg(2), 321u);
}

TEST(Controller, FifoCountsAndCycleCounter) {
  Harness h;
  h.in.assign({1, 2, 3});
  h.out.assign({9});
  h.ctrl.load_program(code({
      {RiscOp::kIncnt, 1, 0, 0, 0},
      {RiscOp::kOutcnt, 2, 0, 0, 0},
      {RiscOp::kRdcyc, 3, 0, 0, 0},
      {RiscOp::kHalt, 0, 0, 0, 0},
  }));
  h.run();
  EXPECT_EQ(h.ctrl.reg(1), 3u);
  EXPECT_EQ(h.ctrl.reg(2), 1u);
  EXPECT_EQ(h.ctrl.reg(3), 2u);  // RDCYC executed on cycle 2
}

TEST(Controller, HaltIsSticky) {
  Harness h;
  h.ctrl.load_program(code({{RiscOp::kHalt, 0, 0, 0, 0}}));
  h.step();
  EXPECT_TRUE(h.ctrl.halted());
  const auto res = h.step();
  EXPECT_TRUE(res.halted);
  EXPECT_FALSE(res.executed);
}

TEST(Controller, RunningOffProgramEndThrows) {
  Harness h;
  h.ctrl.load_program(code({{RiscOp::kNop, 0, 0, 0, 0}}));
  h.step();
  EXPECT_THROW(h.step(), SimError);
}

TEST(Controller, SetRegMaterializesArbitraryConstants) {
  // Property: ProgramBuilder::set_reg reproduces any 64-bit value.
  const std::uint64_t cases[] = {0,
                                 1,
                                 0x7FFF,
                                 0x8000,
                                 0xFFFF,
                                 0x10000,
                                 0xFEDCBA9876543210ull,
                                 0xFFFFFFFFFFFFFFFFull,
                                 0x8000000000000000ull,
                                 42,
                                 static_cast<std::uint64_t>(-42)};
  for (const auto value : cases) {
    Harness h;
    ProgramBuilder pb({2, 2, 8}, "setreg");
    pb.set_reg(5, value);
    pb.halt();
    h.ctrl.load_program(pb.build().controller_code);
    h.run();
    EXPECT_EQ(h.ctrl.reg(5), value) << "value=" << value;
  }
}

}  // namespace
}  // namespace sring
