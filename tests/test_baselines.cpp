// Tests for the Table-1 / comparative-results baseline models: MMX
// SIMD, block-matching ASIC, scalar CPU.
#include <gtest/gtest.h>

#include "baseline/asic_me.hpp"
#include "baseline/mmx.hpp"
#include "baseline/scalar_cpu.hpp"
#include "dsp/fir.hpp"
#include "dsp/sad.hpp"

namespace sring::baseline {
namespace {

TEST(MmxAlu, Psubusb) {
  // 0x10 - 0x20 saturates to 0; 0x80 - 0x10 = 0x70, per byte.
  EXPECT_EQ(psubusb(0x1080, 0x2010), 0x0070u);
  EXPECT_EQ(psubusb(0xFF00FF00FF00FF00ull, 0x0100010001000100ull),
            0xFE00FE00FE00FE00ull);
}

TEST(MmxAlu, Unpack) {
  const Mmx v = 0x8877665544332211ull;
  EXPECT_EQ(punpcklbw_zero(v), 0x0044003300220011ull);
  EXPECT_EQ(punpckhbw_zero(v), 0x0088007700660055ull);
}

TEST(MmxAlu, PaddwWraps) {
  EXPECT_EQ(paddw(0xFFFF, 0x0002), 0x0001u);
  EXPECT_EQ(paddw(0x0001000100010001ull, 0x0001000100010001ull),
            0x0002000200020002ull);
}

TEST(MmxAlu, HorizontalSum) {
  EXPECT_EQ(horizontal_sum_words(0x0004000300020001ull), 10u);
}

TEST(MmxModel, SadsMatchGoldenModel) {
  const Image ref = Image::synthetic(48, 48, 21);
  const Image cand = Image::shifted(ref, 3, -2, 5, 6);
  const auto mmx = mmx_motion_estimation(ref, 16, 16, cand, 8);
  const auto golden = dsp::all_candidate_sads(ref, 16, 16, cand, 8);
  ASSERT_EQ(mmx.sads.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(mmx.sads[i], golden[i]) << i;
  }
  EXPECT_EQ(mmx.best, dsp::full_search(ref, 16, 16, cand, 8));
}

TEST(MmxModel, CycleCountInPlausibleEnvelope) {
  // 289 candidates x 88 MMX ops / candidate, paired at between 1 and 2
  // ops/cycle plus bookkeeping: tens of cycles per candidate.
  const Image ref = Image::synthetic(48, 48, 2);
  const Image cand = Image::shifted(ref, 1, 0, 3, 4);
  const auto mmx = mmx_motion_estimation(ref, 16, 16, cand, 8);
  const double per_candidate =
      static_cast<double>(mmx.stats.cycles) / 289.0;
  EXPECT_GT(per_candidate, 45.0);
  EXPECT_LT(per_candidate, 110.0);
  // Pairing actually happened: fewer cycles than ops.
  EXPECT_LT(mmx.stats.cycles, mmx.stats.mmx_ops + mmx.stats.scalar_ops);
}

TEST(AsicModel, SadsMatchGoldenAndOneCandidatePerCycle) {
  const Image ref = Image::synthetic(48, 48, 9);
  const Image cand = Image::shifted(ref, -2, 2, 1, 3);
  const auto asic = asic_motion_estimation(ref, 16, 16, cand, 8);
  const auto golden = dsp::all_candidate_sads(ref, 16, 16, cand, 8);
  ASSERT_EQ(asic.sads.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(asic.sads[i], golden[i]) << i;
  }
  // 289 candidates + fill + tree latency: a few hundred cycles.
  EXPECT_GE(asic.cycles, 289u);
  EXPECT_LE(asic.cycles, 289u + 32u);
  EXPECT_EQ(asic.pe_ops, 289u * 64u);
}

TEST(ScalarModel, FirMatchesReference) {
  std::vector<Word> x = {1, 2, 3, 4, 5, to_word(-6), 7};
  std::vector<Word> c = {2, to_word(-1), 3};
  const auto scalar = scalar_fir(x, c);
  EXPECT_EQ(scalar.outputs, dsp::fir_reference(x, c));
  EXPECT_GT(scalar.stats.instructions, 0u);
  EXPECT_GT(scalar.stats.cycles, 0.0);
}

TEST(ScalarModel, MeMatchesGolden) {
  const Image ref = Image::synthetic(32, 32, 4);
  const Image cand = Image::shifted(ref, 1, -1, 2, 2);
  const auto scalar = scalar_motion_estimation(ref, 12, 12, cand, 4);
  EXPECT_EQ(scalar.sads, dsp::all_candidate_sads(ref, 12, 12, cand, 4));
}

TEST(ScalarModel, MipsScaleWithClock) {
  std::vector<Word> x(256, 3);
  std::vector<Word> c(8, 1);
  const auto r = scalar_fir(x, c);
  const double mips450 = r.stats.mips(450e6);
  const double mips900 = r.stats.mips(900e6);
  EXPECT_NEAR(mips900, 2.0 * mips450, 1e-6);
  // A P6-class core sustains on the order of its IPC x clock.
  EXPECT_GT(mips450, 100.0);
  EXPECT_LT(mips450, 1000.0);
}

}  // namespace
}  // namespace sring::baseline
