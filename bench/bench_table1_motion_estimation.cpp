// Table 1 reproduction — motion-estimation performance.
//
// Paper: "Table 1 shows the performances of the Systolic Ring compared
// with the ASIC architecture implemented in [7] and Intel MMX
// instructions [8] using the criterion of the number of cycles needed
// for matching a 8x8 reference block against its search area of 8
// pixels displacement."  Shape to reproduce: ASIC fastest by roughly
// an order of magnitude, Systolic Ring almost 8x faster than MMX.
//
// All three engines here actually execute the workload (the ring in
// the cycle-accurate simulator, MMX and the ASIC as documented cost
// models with functional checking), so the cycle columns are measured,
// not transcribed.
#include <cstdio>

#include "baseline/asic_me.hpp"
#include "baseline/mmx.hpp"
#include "common/image.hpp"
#include "kernels/motion_estimation.hpp"
#include "obs/cli.hpp"

int main(int argc, char** argv) {
  using namespace sring;
  const std::string json_path =
      obs::extract_option(argc, argv, "--json").value_or("");
  const RingGeometry ring16{8, 2, 16};

  const Image ref = Image::synthetic(64, 64, 1001);
  const Image cand = Image::shifted(ref, 5, -3, 77, 4);
  const std::size_t rx = 24;
  const std::size_t ry = 24;

  const auto ring = kernels::run_motion_estimation(ring16, ref, rx, ry,
                                                   cand, 8);
  const auto mmx = baseline::mmx_motion_estimation(ref, rx, ry, cand, 8);
  const auto asic = baseline::asic_motion_estimation(ref, rx, ry, cand, 8);

  // Functional agreement across all engines.
  bool agree = ring.sads == mmx.sads && ring.sads == asic.sads &&
               ring.best == mmx.best && ring.best == asic.best;

  std::printf("Table 1: motion estimation, 8x8 block, +-8 displacement "
              "(289 candidates)\n\n");
  std::printf("  %-26s %10s %14s %12s\n", "architecture", "cycles",
              "cycles/cand.", "vs Ring");
  const auto row = [&](const char* name, std::uint64_t cycles) {
    std::printf("  %-26s %10llu %14.2f %11.2fx\n", name,
                static_cast<unsigned long long>(cycles),
                static_cast<double>(cycles) / 289.0,
                static_cast<double>(cycles) /
                    static_cast<double>(ring.cycles));
  };
  row("ASIC PE-array [7]", asic.cycles);
  row("Systolic Ring-16 @200MHz", ring.cycles);
  row("Pentium MMX [8]", mmx.stats.cycles);

  std::printf("\n  best vector: (%+d,%+d) sad=%u, engines agree: %s\n",
              ring.best.dx, ring.best.dy, ring.best.sad,
              agree ? "yes" : "NO");
  std::printf("  paper's shape: ASIC << Ring (flexibility trade-off), "
              "Ring ~8x faster than MMX -> measured %.1fx\n",
              static_cast<double>(mmx.stats.cycles) /
                  static_cast<double>(ring.cycles));

  // Scalability on this workload: bigger rings process more candidates
  // per batch (one SAD unit per layer).
  std::printf("\n  ring-size sweep (same block match):\n");
  std::printf("  %-12s %8s %14s\n", "ring", "cycles", "vs Ring-16");
  for (const std::size_t layers : {4u, 8u, 16u, 32u}) {
    const RingGeometry g{layers, 2, 16};
    const auto r = kernels::run_motion_estimation(g, ref, rx, ry, cand, 8);
    agree = agree && r.sads == ring.sads;
    std::printf("  Ring-%-7zu %8llu %13.2fx\n", 2 * layers,
                static_cast<unsigned long long>(r.cycles),
                static_cast<double>(ring.cycles) /
                    static_cast<double>(r.cycles));
  }
  std::printf("  (results identical at every size: %s)\n",
              agree ? "yes" : "NO");

  RunReport report = ring.report;
  report.name = "table1.motion_estimation";
  report.extra("asic_cycles", asic.cycles)
      .extra("mmx_cycles", mmx.stats.cycles)
      .extra("vs_mmx", static_cast<double>(mmx.stats.cycles) /
                           static_cast<double>(ring.cycles))
      .extra("engines_agree", agree);
  maybe_write_run_report(report, json_path);
  return agree ? 0 : 1;
}
