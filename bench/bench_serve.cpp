// bench_serve — loopback load bench of the remote job-serving stack.
//
// Starts an in-process net::Server on an ephemeral loopback port,
// drives it from C concurrent client threads submitting a
// deterministic mixed kernel batch, and reports per-request latency
// (p50/p99/mean) plus jobs/s.  Every remote output is compared word
// for word against a local rt::Runtime run of the identical jobs — a
// latency number only counts if the serving stack stayed bit-exact.
//
// Usage:
//   bench_serve [--jobs N] [--clients C] [--workers W] [--queue Q]
//               [--mix fir|me|dwt|matvec|mixed] [--json <path>]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/image.hpp"
#include "common/rng.hpp"
#include "dsp/matvec.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/cli.hpp"
#include "obs/quantile.hpp"
#include "rt/runtime.hpp"
#include "sim/report.hpp"

namespace {

using namespace sring;

constexpr RingGeometry kGeom{8, 2, 16};

/// Deterministic request batch: request i depends only on (mix, i), so
/// reruns and the local reference build the exact same work.
std::vector<net::JobRequest> build_requests(const std::string& mix,
                                            std::size_t count) {
  std::vector<Word> dct_flat;
  for (const auto& row : dsp::dct8_matrix_q7()) {
    dct_flat.insert(dct_flat.end(), row.begin(), row.end());
  }

  std::vector<net::JobRequest> reqs;
  reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(0x5E7Eull + i);
    std::string kind = mix;
    if (mix == "mixed") {
      static const char* kinds[] = {"fir", "me", "dwt", "matvec"};
      kind = kinds[i % 4];
    }
    net::JobRequest req;
    req.geometry = kGeom;
    if (kind == "fir") {
      req.kernel = net::KernelId::kFir;
      req.fir_coeffs = {1, static_cast<Word>(-2), 3, 4};
      req.input.resize(256);
      for (auto& w : req.input) w = rng.next_word_in(-128, 127);
    } else if (kind == "me") {
      req.kernel = net::KernelId::kMotionEstimation;
      req.me_ref = Image::synthetic(16, 16, 31 + i);
      req.me_cand = Image::shifted(req.me_ref, 1, -1, 57 + i, 2);
      req.me_rx = 4;
      req.me_ry = 4;
      req.me_range = 2;
    } else if (kind == "dwt") {
      req.kernel = net::KernelId::kDwt53;
      req.input.resize(256);
      for (auto& w : req.input) w = rng.next_word_in(-128, 127);
    } else if (kind == "matvec") {
      req.kernel = net::KernelId::kMatvec8;
      req.matvec_m = dct_flat;
      req.input.resize(64);
      for (auto& w : req.input) w = rng.next_word_in(-64, 63);
    } else {
      throw SimError("bench_serve: unknown mix '" + mix + "'");
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  try {
    const std::string json_path =
        obs::extract_option(argc, argv, "--json").value_or("");
    const std::string mix =
        obs::extract_option(argc, argv, "--mix").value_or("mixed");
    const std::size_t jobs = std::strtoul(
        obs::extract_option(argc, argv, "--jobs").value_or("96").c_str(),
        nullptr, 10);
    const std::size_t clients = std::strtoul(
        obs::extract_option(argc, argv, "--clients").value_or("2").c_str(),
        nullptr, 10);
    const std::size_t workers = std::strtoul(
        obs::extract_option(argc, argv, "--workers").value_or("2").c_str(),
        nullptr, 10);
    const std::size_t queue = std::strtoul(
        obs::extract_option(argc, argv, "--queue").value_or("64").c_str(),
        nullptr, 10);
    check(jobs >= 1 && clients >= 1 && workers >= 1 && queue >= 1,
          "bench_serve: --jobs/--clients/--workers/--queue must be >= 1");

    std::printf("bench_serve: mix=%s jobs=%zu clients=%zu workers=%zu "
                "queue=%zu\n",
                mix.c_str(), jobs, clients, workers, queue);

    const std::vector<net::JobRequest> reqs = build_requests(mix, jobs);

    // Local reference: the same jobs straight through rt::Runtime.
    std::vector<std::vector<Word>> expected;
    expected.reserve(jobs);
    {
      rt::RuntimeConfig lcfg;
      lcfg.workers = workers;
      lcfg.queue_capacity = queue;
      rt::Runtime local(lcfg);
      std::vector<rt::Job> local_jobs;
      local_jobs.reserve(jobs);
      for (const auto& req : reqs) local_jobs.push_back(net::to_rt_job(req));
      for (auto& r : local.submit_batch(std::move(local_jobs))) {
        check(r.ok, "bench_serve: local reference job failed: " + r.error);
        expected.push_back(std::move(r.outputs));
      }
    }

    net::ServerConfig scfg;
    scfg.runtime.workers = workers;
    scfg.runtime.queue_capacity = queue;
    net::Server server(scfg);
    const std::uint16_t port = server.port();
    std::thread server_thread([&server] { server.run(); });

    std::vector<double> latencies_us(jobs, 0.0);
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> client_threads;
    client_threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      client_threads.emplace_back([&] {
        net::ClientConfig ccfg;
        ccfg.port = port;
        ccfg.busy_retries = 64;  // loaded loopback: spin, don't shed
        net::Client client(ccfg);
        while (true) {
          const std::size_t i = next.fetch_add(1);
          if (i >= jobs || failed.load()) break;
          const auto s0 = std::chrono::steady_clock::now();
          const net::RemoteResult r = client.submit(reqs[i]);
          const auto s1 = std::chrono::steady_clock::now();
          latencies_us[i] =
              std::chrono::duration<double, std::micro>(s1 - s0).count();
          if (!r.ok || r.outputs != expected[i]) {
            failed.store(true);
            std::fprintf(stderr,
                         "bench_serve: job %zu %s\n", i,
                         !r.ok ? (r.busy ? "shed as busy"
                                         : ("failed: " + r.error).c_str())
                               : "DIVERGED from local execution");
            break;
          }
        }
      });
    }
    for (auto& t : client_threads) t.join();
    const auto t1 = std::chrono::steady_clock::now();

    const obs::Registry m = server.metrics();
    const net::StatsReplyMsg stats = server.stats_snapshot(0);
    server.request_drain();
    server_thread.join();

    check(!failed.load(),
          "bench_serve: remote execution diverged or failed");

    std::vector<double> sorted = latencies_us;
    std::sort(sorted.begin(), sorted.end());
    const double wall_s = std::chrono::duration<double>(t1 - t0).count();
    const double jobs_per_s = static_cast<double>(jobs) / wall_s;
    double mean = 0.0;
    for (const double v : sorted) mean += v;
    mean /= static_cast<double>(sorted.size());
    const double p50 = obs::percentile_sorted(sorted, 0.50);
    const double p99 = obs::percentile_sorted(sorted, 0.99);

    const auto counter = [&m](const char* name) {
      const auto* c = m.find_counter(name);
      return c != nullptr ? c->value() : 0;
    };

    const std::uint64_t plan_compiles = counter("ring.plan.compiles");
    const std::uint64_t plan_hits = counter("ring.plan.hits");
    const double plan_hit_rate =
        plan_compiles + plan_hits > 0
            ? static_cast<double>(plan_hits) /
                  static_cast<double>(plan_compiles + plan_hits)
            : 0.0;

    std::printf(
        "  %zu jobs in %.3fs: %8.1f jobs/s, latency p50 %.0f us / p99 "
        "%.0f us / mean %.0f us (busy-rejects %llu, %llu bytes in / "
        "%llu out)\n  plan cache: %llu compiles, %llu hits (%.1f%% hit "
        "rate), %llu superstep cycles over %llu dispatches\n"
        "  outputs bit-identical to local rt::Runtime execution\n",
        jobs, wall_s, jobs_per_s, p50, p99, mean,
        static_cast<unsigned long long>(counter("net.rejects.busy")),
        static_cast<unsigned long long>(counter("net.bytes.in")),
        static_cast<unsigned long long>(counter("net.bytes.out")),
        static_cast<unsigned long long>(plan_compiles),
        static_cast<unsigned long long>(plan_hits),
        100.0 * plan_hit_rate,
        static_cast<unsigned long long>(
            counter("ring.superstep.cycles")),
        static_cast<unsigned long long>(
            counter("ring.superstep.dispatches")));
    for (const auto& q : stats.latencies) {
      std::printf("  %-28s p50 %8.0f us  p90 %8.0f us  p99 %8.0f us  "
                  "(n=%llu)\n",
                  q.name.c_str(), q.p50_us, q.p90_us, q.p99_us,
                  static_cast<unsigned long long>(q.count));
    }

    RunReport report;
    report.name = "bench_serve";
    report.extra("schema_version", std::uint64_t{1})
        .extra("mix", mix)
        .extra("jobs", std::uint64_t{jobs})
        .extra("clients", std::uint64_t{clients})
        .extra("workers", std::uint64_t{workers})
        .extra("queue_capacity", std::uint64_t{queue})
        .extra("host_cores",
               std::uint64_t{std::thread::hardware_concurrency()})
        .extra("seconds", wall_s)
        .extra("jobs_per_s", jobs_per_s)
        .extra("latency_p50_us", p50)
        .extra("latency_p99_us", p99)
        .extra("latency_mean_us", mean)
        .extra("busy_rejects", counter("net.rejects.busy"))
        .extra("frames_in", counter("net.frames.in"))
        .extra("bytes_in", counter("net.bytes.in"))
        .extra("bytes_out", counter("net.bytes.out"))
        .extra("plan_compiles", plan_compiles)
        .extra("plan_hits", plan_hits)
        .extra("plan_hit_rate", plan_hit_rate)
        .extra("superstep_cycles", counter("ring.superstep.cycles"))
        .extra("superstep_dispatches",
               counter("ring.superstep.dispatches"))
        .extra("worker_utilization", stats.worker_utilization)
        .extra("outputs_bit_identical", true);
    for (const auto& q : stats.latencies) {
      obs::JsonValue lat = obs::JsonValue::object();
      lat.set("count", q.count);
      lat.set("mean_us", q.mean_us);
      lat.set("p50_us", q.p50_us);
      lat.set("p90_us", q.p90_us);
      lat.set("p99_us", q.p99_us);
      lat.set("max_us", q.max_us);
      report.extra(q.name, std::move(lat));
    }
    maybe_write_run_report(report, json_path);
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    return 1;
  }
}
