// bench_serve — loopback saturation sweep of the remote job-serving
// stack.
//
// Starts an in-process net::Server on an ephemeral loopback port for
// every sweep point (clients x pipeline depth x shards), drives it
// from C concurrent client threads — sequentially (pipeline 0) or
// with up to W frames in flight per connection (submit_pipelined) —
// and reports per-request latency (p50/p99/mean) plus jobs/s for
// every point.  Every remote output is compared word for word against
// a local rt::Runtime run of the identical jobs — a latency number
// only counts if the serving stack stayed bit-exact.
//
// On a single-core host shard scaling is not measurable (the shards
// time-slice one core); the report says so with a null shard_speedup
// instead of a number that looks like a scaling regression — the
// same discipline as bench_throughput's efficiency column.
//
// Usage:
//   bench_serve [--jobs N] [--clients C[,C...]] [--pipeline W[,W...]]
//               [--shards S[,S...]] [--workers W] [--queue Q]
//               [--mix fir|me|dwt|matvec|mixed] [--json <path>]
//               [--min-jobs-per-s X]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/image.hpp"
#include "common/rng.hpp"
#include "dsp/matvec.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/cli.hpp"
#include "obs/quantile.hpp"
#include "rt/runtime.hpp"
#include "sim/report.hpp"

namespace {

using namespace sring;

constexpr RingGeometry kGeom{8, 2, 16};

/// Deterministic request batch: request i depends only on (mix, i), so
/// reruns and the local reference build the exact same work.
std::vector<net::JobRequest> build_requests(const std::string& mix,
                                            std::size_t count) {
  std::vector<Word> dct_flat;
  for (const auto& row : dsp::dct8_matrix_q7()) {
    dct_flat.insert(dct_flat.end(), row.begin(), row.end());
  }

  std::vector<net::JobRequest> reqs;
  reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(0x5E7Eull + i);
    std::string kind = mix;
    if (mix == "mixed") {
      static const char* kinds[] = {"fir", "me", "dwt", "matvec"};
      kind = kinds[i % 4];
    }
    net::JobRequest req;
    req.geometry = kGeom;
    if (kind == "fir") {
      req.kernel = net::KernelId::kFir;
      req.fir_coeffs = {1, static_cast<Word>(-2), 3, 4};
      req.input.resize(256);
      for (auto& w : req.input) w = rng.next_word_in(-128, 127);
    } else if (kind == "me") {
      req.kernel = net::KernelId::kMotionEstimation;
      req.me_ref = Image::synthetic(16, 16, 31 + i);
      req.me_cand = Image::shifted(req.me_ref, 1, -1, 57 + i, 2);
      req.me_rx = 4;
      req.me_ry = 4;
      req.me_range = 2;
    } else if (kind == "dwt") {
      req.kernel = net::KernelId::kDwt53;
      req.input.resize(256);
      for (auto& w : req.input) w = rng.next_word_in(-128, 127);
    } else if (kind == "matvec") {
      req.kernel = net::KernelId::kMatvec8;
      req.matvec_m = dct_flat;
      req.input.resize(64);
      for (auto& w : req.input) w = rng.next_word_in(-64, 63);
    } else {
      throw SimError("bench_serve: unknown mix '" + mix + "'");
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

std::vector<std::size_t> parse_list(const std::string& text,
                                    const char* flag,
                                    bool allow_zero) {
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string tok =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    check(!tok.empty(), std::string("bench_serve: empty entry in ") + flag);
    const std::size_t v = std::strtoul(tok.c_str(), nullptr, 10);
    check(allow_zero || v >= 1,
          std::string("bench_serve: ") + flag + " entries must be >= 1");
    out.push_back(v);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  check(!out.empty(), std::string("bench_serve: empty ") + flag + " list");
  return out;
}

/// One sweep point's outcome; latencies are per-request for the
/// sequential mode and per-window-amortized for the pipelined modes.
struct SweepPoint {
  std::size_t clients = 0;
  std::size_t pipeline = 0;  ///< 0 = sequential submit()
  std::size_t shards = 0;
  double seconds = 0.0;
  double jobs_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  std::uint64_t busy_rejects = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  try {
    const std::string json_path =
        obs::extract_option(argc, argv, "--json").value_or("");
    const std::string mix =
        obs::extract_option(argc, argv, "--mix").value_or("mixed");
    const std::size_t jobs = std::strtoul(
        obs::extract_option(argc, argv, "--jobs").value_or("96").c_str(),
        nullptr, 10);
    const std::vector<std::size_t> client_counts = parse_list(
        obs::extract_option(argc, argv, "--clients").value_or("2"),
        "--clients", false);
    const std::vector<std::size_t> pipelines = parse_list(
        obs::extract_option(argc, argv, "--pipeline").value_or("0,8"),
        "--pipeline", true);
    const std::vector<std::size_t> shard_counts = parse_list(
        obs::extract_option(argc, argv, "--shards").value_or("1,2"),
        "--shards", false);
    const std::size_t workers = std::strtoul(
        obs::extract_option(argc, argv, "--workers").value_or("2").c_str(),
        nullptr, 10);
    const std::size_t queue = std::strtoul(
        obs::extract_option(argc, argv, "--queue").value_or("64").c_str(),
        nullptr, 10);
    const double min_jobs_per_s = std::strtod(
        obs::extract_option(argc, argv, "--min-jobs-per-s")
            .value_or("0")
            .c_str(),
        nullptr);
    check(jobs >= 1 && workers >= 1 && queue >= 1,
          "bench_serve: --jobs/--workers/--queue must be >= 1");

    std::printf(
        "bench_serve: mix=%s jobs=%zu workers=%zu queue=%zu "
        "host_cores=%u\n",
        mix.c_str(), jobs, workers, queue,
        std::thread::hardware_concurrency());

    // Shard scaling needs real parallelism to mean anything: on one
    // core the shards time-slice, so the comparison reads as noise.
    const bool multicore = std::thread::hardware_concurrency() > 1;
    bool sweep_has_multi_shard = false;
    for (const std::size_t s : shard_counts) {
      sweep_has_multi_shard = sweep_has_multi_shard || s > 1;
    }
    if (!multicore && sweep_has_multi_shard) {
      std::printf(
          "  WARNING: single-core host — shard scaling not measurable "
          "(shards time-slice one core), reporting null speedup\n");
    }

    const std::vector<net::JobRequest> reqs = build_requests(mix, jobs);

    // Local reference: the same jobs straight through rt::Runtime.
    std::vector<std::vector<Word>> expected;
    expected.reserve(jobs);
    {
      rt::RuntimeConfig lcfg;
      lcfg.workers = workers;
      lcfg.queue_capacity = queue;
      rt::Runtime local(lcfg);
      std::vector<rt::Job> local_jobs;
      local_jobs.reserve(jobs);
      for (const auto& req : reqs) local_jobs.push_back(net::to_rt_job(req));
      for (auto& r : local.submit_batch(std::move(local_jobs))) {
        check(r.ok, "bench_serve: local reference job failed: " + r.error);
        expected.push_back(std::move(r.outputs));
      }
    }

    std::vector<SweepPoint> points;
    obs::Registry primary_metrics;
    net::StatsReplyMsg primary_stats;

    for (const std::size_t shards : shard_counts) {
      for (const std::size_t clients : client_counts) {
        for (const std::size_t pipeline : pipelines) {
          net::ServerConfig scfg;
          scfg.runtime.workers = workers;
          scfg.runtime.queue_capacity = queue;
          scfg.shards = shards;
          net::Server server(scfg);
          const std::uint16_t port = server.port();
          std::thread server_thread([&server] { server.run(); });

          std::vector<double> latencies_us(jobs, 0.0);
          std::atomic<bool> failed{false};

          // Static contiguous chunks per client: deterministic work
          // split, no shared claim counter on the submit path.
          const auto t0 = std::chrono::steady_clock::now();
          std::vector<std::thread> client_threads;
          client_threads.reserve(clients);
          for (std::size_t c = 0; c < clients; ++c) {
            const std::size_t lo = c * jobs / clients;
            const std::size_t hi = (c + 1) * jobs / clients;
            client_threads.emplace_back([&, lo, hi] {
              if (lo == hi) return;
              net::ClientConfig ccfg;
              ccfg.port = port;
              ccfg.busy_retries = 64;  // loaded loopback: spin, don't shed
              net::Client client(ccfg);
              if (pipeline == 0) {
                for (std::size_t i = lo; i < hi && !failed.load(); ++i) {
                  const auto s0 = std::chrono::steady_clock::now();
                  const net::RemoteResult r = client.submit(reqs[i]);
                  const auto s1 = std::chrono::steady_clock::now();
                  latencies_us[i] =
                      std::chrono::duration<double, std::micro>(s1 - s0)
                          .count();
                  if (!r.ok || r.outputs != expected[i]) {
                    failed.store(true);
                    std::fprintf(
                        stderr, "bench_serve: job %zu %s\n", i,
                        !r.ok ? (r.busy
                                     ? "shed as busy"
                                     : ("failed: " + r.error).c_str())
                              : "DIVERGED from local execution");
                    return;
                  }
                }
                return;
              }
              const std::vector<net::JobRequest> chunk(
                  reqs.begin() + static_cast<std::ptrdiff_t>(lo),
                  reqs.begin() + static_cast<std::ptrdiff_t>(hi));
              const auto s0 = std::chrono::steady_clock::now();
              const std::vector<net::RemoteResult> results =
                  client.submit_pipelined(chunk, pipeline);
              const auto s1 = std::chrono::steady_clock::now();
              // Amortized per-request latency: the window hides the
              // round trips, so wall / n is the honest figure.
              const double per_job_us =
                  std::chrono::duration<double, std::micro>(s1 - s0)
                      .count() /
                  static_cast<double>(hi - lo);
              for (std::size_t i = lo; i < hi; ++i) {
                latencies_us[i] = per_job_us;
                const net::RemoteResult& r = results[i - lo];
                if (!r.ok || r.outputs != expected[i]) {
                  failed.store(true);
                  std::fprintf(
                      stderr, "bench_serve: job %zu %s\n", i,
                      !r.ok ? (r.busy ? "shed as busy"
                                      : ("failed: " + r.error).c_str())
                            : "DIVERGED from local execution");
                  return;
                }
              }
            });
          }
          for (auto& t : client_threads) t.join();
          const auto t1 = std::chrono::steady_clock::now();

          const obs::Registry m = server.metrics();
          const net::StatsReplyMsg stats = server.stats_snapshot(0);
          server.request_drain();
          server_thread.join();

          check(!failed.load(),
                "bench_serve: remote execution diverged or failed");

          std::vector<double> sorted = latencies_us;
          std::sort(sorted.begin(), sorted.end());
          SweepPoint p;
          p.clients = clients;
          p.pipeline = pipeline;
          p.shards = shards;
          p.seconds = std::chrono::duration<double>(t1 - t0).count();
          p.jobs_per_s = static_cast<double>(jobs) / p.seconds;
          p.p50_us = obs::percentile_sorted(sorted, 0.50);
          p.p99_us = obs::percentile_sorted(sorted, 0.99);
          for (const double v : sorted) p.mean_us += v;
          p.mean_us /= static_cast<double>(sorted.size());
          const auto* busy = m.find_counter("net.rejects.busy");
          p.busy_rejects = busy != nullptr ? busy->value() : 0;

          if (points.empty()) {
            primary_metrics = m;
            primary_stats = stats;
          }
          points.push_back(p);
          std::printf(
              "  shards=%zu clients=%zu pipeline=%-3zu %8.1f jobs/s  "
              "p50 %7.0f us  p99 %7.0f us  mean %7.0f us  (busy %llu)\n",
              p.shards, p.clients, p.pipeline, p.jobs_per_s, p.p50_us,
              p.p99_us, p.mean_us,
              static_cast<unsigned long long>(p.busy_rejects));
        }
      }
    }

    const SweepPoint& primary = points.front();
    const SweepPoint* peak = &points.front();
    for (const SweepPoint& p : points) {
      if (p.jobs_per_s > peak->jobs_per_s) peak = &p;
    }

    // Shard speedup: best multi-shard point vs best single-shard
    // point.  Only meaningful with real cores underneath.
    double best_single = 0.0;
    double best_multi = 0.0;
    for (const SweepPoint& p : points) {
      if (p.shards == 1) {
        best_single = std::max(best_single, p.jobs_per_s);
      } else {
        best_multi = std::max(best_multi, p.jobs_per_s);
      }
    }
    const bool shard_speedup_measurable =
        multicore && best_single > 0.0 && best_multi > 0.0;
    const double shard_speedup =
        shard_speedup_measurable ? best_multi / best_single : 0.0;

    std::printf(
        "  peak: %8.1f jobs/s at shards=%zu clients=%zu pipeline=%zu\n"
        "  outputs bit-identical to local rt::Runtime execution at "
        "every sweep point\n",
        peak->jobs_per_s, peak->shards, peak->clients, peak->pipeline);
    if (shard_speedup_measurable) {
      std::printf("  shard speedup (best multi / best single): %.2fx\n",
                  shard_speedup);
    }

    const auto counter = [&](const char* name) {
      const auto* c = primary_metrics.find_counter(name);
      return c != nullptr ? c->value() : 0;
    };

    const std::uint64_t plan_compiles = counter("ring.plan.compiles");
    const std::uint64_t plan_hits = counter("ring.plan.hits");
    const double plan_hit_rate =
        plan_compiles + plan_hits > 0
            ? static_cast<double>(plan_hits) /
                  static_cast<double>(plan_compiles + plan_hits)
            : 0.0;
    for (const auto& q : primary_stats.latencies) {
      std::printf("  %-28s p50 %8.0f us  p90 %8.0f us  p99 %8.0f us  "
                  "(n=%llu)\n",
                  q.name.c_str(), q.p50_us, q.p90_us, q.p99_us,
                  static_cast<unsigned long long>(q.count));
    }

    RunReport report;
    report.name = "bench_serve";
    // The flat fields describe the first sweep point (the legacy
    // single-shard sequential shape under default flags); the sweep
    // array carries every point.
    report.extra("schema_version", std::uint64_t{2})
        .extra("mix", mix)
        .extra("jobs", std::uint64_t{jobs})
        .extra("clients", std::uint64_t{primary.clients})
        .extra("pipeline", std::uint64_t{primary.pipeline})
        .extra("shards", std::uint64_t{primary.shards})
        .extra("workers", std::uint64_t{workers})
        .extra("queue_capacity", std::uint64_t{queue})
        .extra("host_cores",
               std::uint64_t{std::thread::hardware_concurrency()})
        .extra("seconds", primary.seconds)
        .extra("jobs_per_s", primary.jobs_per_s)
        .extra("latency_p50_us", primary.p50_us)
        .extra("latency_p99_us", primary.p99_us)
        .extra("latency_mean_us", primary.mean_us)
        .extra("busy_rejects", primary.busy_rejects)
        .extra("frames_in", counter("net.frames.in"))
        .extra("bytes_in", counter("net.bytes.in"))
        .extra("bytes_out", counter("net.bytes.out"))
        .extra("plan_compiles", plan_compiles)
        .extra("plan_hits", plan_hits)
        .extra("plan_hit_rate", plan_hit_rate)
        .extra("superstep_cycles", counter("ring.superstep.cycles"))
        .extra("superstep_dispatches",
               counter("ring.superstep.dispatches"))
        .extra("worker_utilization", primary_stats.worker_utilization)
        .extra("peak_jobs_per_s", peak->jobs_per_s)
        .extra("peak_clients", std::uint64_t{peak->clients})
        .extra("peak_pipeline", std::uint64_t{peak->pipeline})
        .extra("peak_shards", std::uint64_t{peak->shards})
        .extra("shard_speedup", shard_speedup_measurable
                                    ? obs::JsonValue(shard_speedup)
                                    : obs::JsonValue(nullptr))
        .extra("outputs_bit_identical", true);
    obs::JsonValue sweep = obs::JsonValue::array();
    for (const SweepPoint& p : points) {
      obs::JsonValue pt = obs::JsonValue::object();
      pt.set("shards", std::uint64_t{p.shards});
      pt.set("clients", std::uint64_t{p.clients});
      pt.set("pipeline", std::uint64_t{p.pipeline});
      pt.set("seconds", p.seconds);
      pt.set("jobs_per_s", p.jobs_per_s);
      pt.set("latency_p50_us", p.p50_us);
      pt.set("latency_p99_us", p.p99_us);
      pt.set("latency_mean_us", p.mean_us);
      pt.set("busy_rejects", p.busy_rejects);
      sweep.push_back(std::move(pt));
    }
    report.extra("sweep", std::move(sweep));
    for (const auto& q : primary_stats.latencies) {
      obs::JsonValue lat = obs::JsonValue::object();
      lat.set("count", q.count);
      lat.set("mean_us", q.mean_us);
      lat.set("p50_us", q.p50_us);
      lat.set("p90_us", q.p90_us);
      lat.set("p99_us", q.p99_us);
      lat.set("max_us", q.max_us);
      report.extra(q.name, std::move(lat));
    }
    maybe_write_run_report(report, json_path);

    // Regression gate, same shape as bench_cycle --min-speedup: the
    // sweep's peak throughput must clear the bar.
    if (min_jobs_per_s > 0.0) {
      check(peak->jobs_per_s >= min_jobs_per_s,
            "bench_serve: peak " + std::to_string(peak->jobs_per_s) +
                " jobs/s below --min-jobs-per-s " +
                std::to_string(min_jobs_per_s));
      std::printf("  GATE OK: peak %.1f jobs/s >= %.1f\n",
                  peak->jobs_per_s, min_jobs_per_s);
    }
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    return 1;
  }
}
