// bench_cycle — simulator cycle throughput with and without the Ring's
// decoded cycle-plan cache.
//
// Runs two steady-state kernels (the spatial FIR under global
// configuration and the stand-alone running MAC) for the same input
// twice: once with the plan cache disabled (the interpreter reference)
// and once enabled.  Reports simulated cycles per wall-clock second
// for each path and the speedup.  The run aborts if the two paths'
// outputs or architectural statistics differ in any word — a speedup
// only counts while the simulation stays bit-exact.
//
// Usage:
//   bench_cycle [--samples N] [--reps N] [--json <path>]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/mac_kernel.hpp"
#include "obs/cli.hpp"
#include "sim/report.hpp"
#include "sim/system.hpp"

namespace {

using namespace sring;

constexpr RingGeometry kGeom{8, 2, 16};

std::vector<Word> random_signal(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Word> x(n);
  for (auto& w : x) w = rng.next_word_in(-128, 127);
  return x;
}

struct RunMeasure {
  double seconds = 0.0;
  std::uint64_t cycles = 0;
  std::vector<Word> outputs;
  std::string arch_stats;  ///< SystemStats minus the plan counters
  std::uint64_t plan_hits = 0;
};

std::string arch_stats_string(SystemStats s) {
  s.plan_compiles = 0;
  s.plan_hits = 0;
  s.plan_invalidations = 0;
  return s.to_string();
}

/// One timed run of a loaded program: send input, step to the target
/// output count, capture outputs/stats.
RunMeasure timed_run(const LoadableProgram& program,
                     const std::vector<Word>& input,
                     std::size_t expected_outputs, std::uint64_t max_cycles,
                     bool planned) {
  System sys({kGeom});
  sys.ring().set_plan_cache_enabled(planned);
  sys.load(program);
  sys.host().send(input);
  const auto t0 = std::chrono::steady_clock::now();
  sys.run_until_outputs(expected_outputs, max_cycles);
  const auto t1 = std::chrono::steady_clock::now();

  RunMeasure m;
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.cycles = sys.cycle();
  m.outputs = sys.host().take_received();
  m.arch_stats = arch_stats_string(sys.stats());
  m.plan_hits = sys.ring().plan_hits();
  return m;
}

struct KernelPoint {
  std::string name;
  std::uint64_t cycles = 0;
  double interp_cps = 0.0;   ///< simulated cycles / second, interpreter
  double planned_cps = 0.0;  ///< simulated cycles / second, plan cache
  double speedup = 0.0;
  double plan_hit_rate = 0.0;
};

/// Best-of-`reps` measurement for one kernel, with bit-exactness
/// enforced between the two paths on every repetition.
KernelPoint measure(const std::string& name, const LoadableProgram& program,
                    const std::vector<Word>& input,
                    std::size_t expected_outputs, std::uint64_t max_cycles,
                    std::size_t reps) {
  KernelPoint p;
  p.name = name;
  double best_interp = 0.0;
  double best_planned = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const RunMeasure interp =
        timed_run(program, input, expected_outputs, max_cycles, false);
    const RunMeasure planned =
        timed_run(program, input, expected_outputs, max_cycles, true);
    check(planned.outputs == interp.outputs,
          "bench_cycle: " + name + ": plan outputs diverged");
    check(planned.arch_stats == interp.arch_stats,
          "bench_cycle: " + name + ": plan statistics diverged");
    check(planned.cycles == interp.cycles,
          "bench_cycle: " + name + ": cycle counts diverged");
    p.cycles = planned.cycles;
    p.plan_hit_rate = static_cast<double>(planned.plan_hits) /
                      static_cast<double>(planned.cycles);
    const double icps = static_cast<double>(interp.cycles) / interp.seconds;
    const double pcps = static_cast<double>(planned.cycles) / planned.seconds;
    if (icps > best_interp) best_interp = icps;
    if (pcps > best_planned) best_planned = pcps;
  }
  p.interp_cps = best_interp;
  p.planned_cps = best_planned;
  p.speedup = best_planned / best_interp;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  try {
    const std::string json_path =
        obs::extract_option(argc, argv, "--json").value_or("");
    const std::size_t samples = std::strtoul(
        obs::extract_option(argc, argv, "--samples").value_or("32768").c_str(),
        nullptr, 10);
    const std::size_t reps = std::strtoul(
        obs::extract_option(argc, argv, "--reps").value_or("5").c_str(),
        nullptr, 10);
    check(samples >= 16, "bench_cycle: --samples must be at least 16");
    check(reps >= 1, "bench_cycle: --reps must be at least 1");

    std::printf("bench_cycle: geometry %zux%zu, %zu samples, best of %zu\n",
                kGeom.layers, kGeom.lanes, samples, reps);

    std::vector<KernelPoint> points;

    {  // spatial FIR: global-mode steady state, one host word per cycle
      const std::vector<Word> coeffs{5, static_cast<Word>(-3), 2, 1};
      const std::vector<Word> x = random_signal(11, samples);
      const LoadableProgram program =
          kernels::make_spatial_fir_program(kGeom, coeffs);
      std::vector<Word> feed = x;
      feed.insert(feed.end(), coeffs.size(), 0);  // flush the pipeline
      points.push_back(measure("fir.spatial", program, feed,
                               x.size() + coeffs.size(),
                               64 + 16 * feed.size(), reps));
    }
    {  // running MAC: local-mode steady state, two host words per cycle
      const std::vector<Word> a = random_signal(12, samples);
      const std::vector<Word> b = random_signal(13, samples);
      const LoadableProgram program = kernels::make_running_mac_program(kGeom);
      std::vector<Word> interleaved;
      interleaved.reserve(2 * samples);
      for (std::size_t i = 0; i < samples; ++i) {
        interleaved.push_back(a[i]);
        interleaved.push_back(b[i]);
      }
      points.push_back(measure("mac.local", program, interleaved, samples,
                               64 + 16 * samples, reps));
    }

    for (const auto& p : points) {
      std::printf(
          "  %-12s %8llu cycles  interp %10.0f cyc/s  planned %10.0f cyc/s"
          "  speedup %.2fx  (hit rate %.1f%%)\n",
          p.name.c_str(), static_cast<unsigned long long>(p.cycles),
          p.interp_cps, p.planned_cps, p.speedup, 100.0 * p.plan_hit_rate);
    }

    RunReport report;
    report.name = "bench_cycle";
    report.extra("schema_version", std::uint64_t{1})
        .extra("samples", std::uint64_t{samples})
        .extra("reps", std::uint64_t{reps})
        .extra("outputs_bit_identical", true);
    obs::JsonValue kernels_json = obs::JsonValue::array();
    for (const auto& p : points) {
      obs::JsonValue jp = obs::JsonValue::object();
      jp.set("kernel", p.name);
      jp.set("sim_cycles", p.cycles);
      jp.set("interpreter_cycles_per_s", p.interp_cps);
      jp.set("planned_cycles_per_s", p.planned_cps);
      jp.set("speedup", p.speedup);
      jp.set("plan_hit_rate", p.plan_hit_rate);
      kernels_json.push_back(std::move(jp));
    }
    report.extra("kernels", std::move(kernels_json));
    maybe_write_run_report(report, json_path);
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "bench_cycle: %s\n", e.what());
    return 1;
  }
}
