// bench_cycle — simulator cycle throughput across the three execution
// paths: the ConfigMemory interpreter, the per-cycle decoded cycle
// plan, and the fused superstep engine.
//
// Runs five steady-state kernels (spatial FIR, stand-alone running
// MAC, 5/3 wavelet, block matvec8, full-search motion estimation) on
// the same input three times — plan cache off; plan on with the
// superstep engine off; everything on (the shipped default) — and
// reports simulated cycles per wall-clock second for each path.  The
// run aborts unless all three paths are bit-exact: identical outputs,
// identical cycle counts, identical architectural statistics, and
// (between the per-cycle planned and superstep paths) identical full
// statistics and metrics apart from the ring.superstep.* counters.
//
// The per-run plan/superstep switches defer to the environment
// escape hatches: under SRING_NO_PLAN_CACHE or SRING_NO_SUPERSTEP the
// faster columns degrade to the slower path but every identity check
// still holds — which is exactly what the CI smoke asserts.
//
// Usage:
//   bench_cycle [--samples N] [--reps N] [--json <path>]
//               [--min-speedup X]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/image.hpp"
#include "common/rng.hpp"
#include "dsp/matvec.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/jobs.hpp"
#include "kernels/mac_kernel.hpp"
#include "kernels/matvec_kernel.hpp"
#include "kernels/motion_estimation.hpp"
#include "obs/cli.hpp"
#include "sim/report.hpp"
#include "sim/system.hpp"

namespace {

using namespace sring;

constexpr RingGeometry kGeom{8, 2, 16};

enum class Path : std::size_t { kInterpreter = 0, kPlanned, kSuperstep };
constexpr std::size_t kPathCount = 3;

std::vector<Word> random_signal(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Word> x(n);
  for (auto& w : x) w = rng.next_word_in(-128, 127);
  return x;
}

Image random_image(std::uint64_t seed, std::size_t w, std::size_t h) {
  Rng rng(seed);
  Image img(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      img.at(x, y) = rng.next_word_in(0, 255);
    }
  }
  return img;
}

std::string arch_stats_string(SystemStats s) {
  s.plan_compiles = 0;
  s.plan_hits = 0;
  s.plan_invalidations = 0;
  s.plan_content_hits = 0;
  s.plan_evictions = 0;
  s.plan_seq_fusions = 0;
  s.plan_seq_hits = 0;
  return s.to_string();
}

/// Metrics snapshot with the ring.superstep.* counters dropped — the
/// only instruments allowed to differ between the per-cycle planned
/// path and the superstep engine.
std::string metrics_without_superstep(const obs::Registry& reg) {
  obs::JsonValue out = obs::JsonValue::object();
  for (const auto& [name, counter] : reg.counters()) {
    if (name.rfind("ring.superstep.", 0) == 0) continue;
    out.set(name, counter.value());
  }
  for (const auto& [name, hist] : reg.histograms()) {
    out.set(name, hist.to_json());
  }
  return out.dump();
}

/// FNV-1a over the output words — a stable digest the CI smoke can
/// compare across environment configurations.
std::uint64_t fnv64(const std::vector<Word>& words) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const Word w : words) {
    h = (h ^ (w & 0xffu)) * 0x100000001b3ull;
    h = (h ^ (w >> 8)) * 0x100000001b3ull;
  }
  return h;
}

struct RunMeasure {
  double seconds = 0.0;
  std::uint64_t cycles = 0;
  std::vector<Word> outputs;
  std::string arch_stats;  ///< SystemStats minus the plan counters
  std::string full_stats;  ///< SystemStats including the plan counters
  std::string metrics;     ///< metrics minus ring.superstep.*
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_compiles = 0;
  std::uint64_t plan_invalidations = 0;
  std::uint64_t plan_content_hits = 0;
  std::uint64_t plan_evictions = 0;
  std::uint64_t plan_seq_fusions = 0;
  std::uint64_t plan_seq_hits = 0;
};

/// One timed run of a job on the chosen execution path.  The
/// interpreter path disables both knobs explicitly; the faster paths
/// leave the construction-time environment defaults in force so the
/// escape hatches stay observable end to end.
RunMeasure timed_run(const rt::Job& job, Path path) {
  System sys({kGeom, job.link});
  if (path == Path::kInterpreter) {
    sys.ring().set_plan_cache_enabled(false);
  }
  if (path != Path::kSuperstep) {
    sys.set_superstep_enabled(false);
  }
  sys.load(*job.program);
  sys.host().send(job.input);
  const auto t0 = std::chrono::steady_clock::now();
  if (job.run == rt::Job::Run::kUntilOutputs) {
    sys.run_until_outputs(job.expected_outputs, job.max_cycles);
  } else {
    sys.run_until_halt(job.max_cycles, job.drain_cycles);
  }
  const auto t1 = std::chrono::steady_clock::now();

  RunMeasure m;
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.cycles = sys.cycle();
  m.outputs = sys.host().take_received();
  m.arch_stats = arch_stats_string(sys.stats());
  m.full_stats = sys.stats().to_string();
  m.metrics = metrics_without_superstep(sys.metrics());
  m.plan_hits = sys.ring().plan_hits();
  m.plan_compiles = sys.ring().plan_compiles();
  m.plan_invalidations = sys.ring().plan_invalidations();
  m.plan_content_hits = sys.ring().plan_content_hits();
  m.plan_evictions = sys.ring().plan_evictions();
  m.plan_seq_fusions = sys.ring().plan_seq_fusions();
  m.plan_seq_hits = sys.ring().plan_seq_hits();
  return m;
}

struct KernelPoint {
  std::string name;
  std::uint64_t cycles = 0;
  double cps[kPathCount] = {0.0, 0.0, 0.0};  ///< cycles/s per Path
  double plan_hit_rate = 0.0;
  std::uint64_t plan_compiles = 0;
  std::uint64_t plan_invalidations = 0;
  /// Detaches whose rewritten content re-attached a cached plan — the
  /// recompiles the content-keyed cache avoided.  True misses (content
  /// never seen compiled before) = invalidations - content_hits.
  std::uint64_t plan_content_hits = 0;
  std::uint64_t plan_evictions = 0;
  std::uint64_t plan_seq_fusions = 0;
  std::uint64_t plan_seq_hits = 0;
  std::uint64_t outputs_fnv64 = 0;
};

/// Best-of-`reps` measurement for one kernel, with the three-way
/// bit-exactness contract enforced on every repetition.
KernelPoint measure(const rt::Job& job, std::size_t reps) {
  KernelPoint p;
  p.name = job.name;
  for (std::size_t r = 0; r < reps; ++r) {
    RunMeasure m[kPathCount];
    for (std::size_t path = 0; path < kPathCount; ++path) {
      m[path] = timed_run(job, static_cast<Path>(path));
    }
    const RunMeasure& interp = m[0];
    const RunMeasure& planned = m[1];
    const RunMeasure& super = m[2];
    check(planned.outputs == interp.outputs && super.outputs == interp.outputs,
          "bench_cycle: " + job.name + ": outputs diverged between paths");
    check(planned.cycles == interp.cycles && super.cycles == interp.cycles,
          "bench_cycle: " + job.name + ": cycle counts diverged");
    check(planned.arch_stats == interp.arch_stats &&
              super.arch_stats == interp.arch_stats,
          "bench_cycle: " + job.name + ": architectural stats diverged");
    check(super.full_stats == planned.full_stats,
          "bench_cycle: " + job.name +
              ": superstep changed the plan counters");
    check(super.metrics == planned.metrics,
          "bench_cycle: " + job.name +
              ": superstep changed a non-superstep metric");
    p.cycles = super.cycles;
    p.plan_hit_rate = static_cast<double>(super.plan_hits) /
                      static_cast<double>(super.cycles);
    p.plan_compiles = super.plan_compiles;
    p.plan_invalidations = super.plan_invalidations;
    p.plan_content_hits = super.plan_content_hits;
    p.plan_evictions = super.plan_evictions;
    p.plan_seq_fusions = super.plan_seq_fusions;
    p.plan_seq_hits = super.plan_seq_hits;
    p.outputs_fnv64 = fnv64(super.outputs);
    for (std::size_t path = 0; path < kPathCount; ++path) {
      const double cps =
          static_cast<double>(m[path].cycles) / m[path].seconds;
      if (cps > p.cps[path]) p.cps[path] = cps;
    }
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  try {
    const std::string json_path =
        obs::extract_option(argc, argv, "--json").value_or("");
    const std::size_t samples = std::strtoul(
        obs::extract_option(argc, argv, "--samples").value_or("32768").c_str(),
        nullptr, 10);
    const std::size_t reps = std::strtoul(
        obs::extract_option(argc, argv, "--reps").value_or("5").c_str(),
        nullptr, 10);
    // Regression gate: fail the run unless every kernel's end-to-end
    // speedup (superstep vs interpreter) is at least this factor.  0
    // (the default) disables the gate; the CI smoke passes 1.0 so the
    // compiled paths may never fall behind the interpreter.
    const double min_speedup = std::strtod(
        obs::extract_option(argc, argv, "--min-speedup").value_or("0").c_str(),
        nullptr);
    check(samples >= 16, "bench_cycle: --samples must be at least 16");
    check(reps >= 1, "bench_cycle: --reps must be at least 1");

    std::printf("bench_cycle: geometry %zux%zu, %zu samples, best of %zu\n",
                kGeom.layers, kGeom.lanes, samples, reps);

    std::vector<rt::Job> jobs;
    {  // spatial FIR: global-mode steady state, one host word per cycle
      const std::vector<Word> coeffs{5, static_cast<Word>(-3), 2, 1};
      jobs.push_back(kernels::make_spatial_fir_job(
          kGeom, random_signal(11, samples), coeffs));
      jobs.back().name = "fir.spatial";
    }
    {  // running MAC: local-mode steady state, two host words per cycle
      const std::vector<Word> a = random_signal(12, samples);
      const std::vector<Word> b = random_signal(13, samples);
      rt::Job job;
      job.name = "mac.local";
      job.program = std::make_shared<const LoadableProgram>(
          kernels::make_running_mac_program(kGeom));
      job.input.reserve(2 * samples);
      for (std::size_t i = 0; i < samples; ++i) {
        job.input.push_back(a[i]);
        job.input.push_back(b[i]);
      }
      job.run = rt::Job::Run::kUntilOutputs;
      job.expected_outputs = samples;
      job.max_cycles = 64 + 16 * samples;
      jobs.push_back(std::move(job));
    }
    {  // 5/3 wavelet: local-mode multi-slot programs (superstep period 2)
      const std::size_t n = samples & ~std::size_t{1};
      jobs.push_back(kernels::make_dwt53_job(kGeom, random_signal(14, n)));
      jobs.back().name = "dwt53";
    }
    {  // block matvec8: hardware-multiplexed pages, plan recompiles
      const std::size_t n = samples < 64 ? 64 : samples & ~std::size_t{7};
      jobs.push_back(kernels::make_matvec8_job(kGeom, dsp::dct8_matrix_q7(),
                                               random_signal(15, n)));
      jobs.back().name = "matvec8";
    }
    {  // motion estimation: halt-bounded SAD engine with WAIT phases
      const Image ref = random_image(16, 16, 16);
      const Image cand = random_image(17, 16, 16);
      jobs.push_back(
          kernels::make_motion_estimation_job(kGeom, ref, 4, 4, cand, 2));
      jobs.back().name = "motion_est";
    }

    std::vector<KernelPoint> points;
    points.reserve(jobs.size());
    for (const rt::Job& job : jobs) points.push_back(measure(job, reps));

    double worst_speedup = 0.0;
    std::string worst_kernel;
    for (const auto& p : points) {
      const double interp = p.cps[0];
      const double planned = p.cps[1];
      const double super = p.cps[2];
      const double speedup = super / interp;
      if (worst_kernel.empty() || speedup < worst_speedup) {
        worst_speedup = speedup;
        worst_kernel = p.name;
      }
      std::printf(
          "  %-12s %8llu cycles  interp %9.0f cyc/s  planned %9.0f cyc/s"
          "  superstep %9.0f cyc/s  speedup %.2fx\n"
          "  %-12s hit rate %.1f%%  compiles %llu  detaches %llu"
          "  (re-attached %llu, true misses %llu)  seq fusions %llu"
          "  seq hits %llu  evictions %llu\n",
          p.name.c_str(), static_cast<unsigned long long>(p.cycles), interp,
          planned, super, speedup, "", 100.0 * p.plan_hit_rate,
          static_cast<unsigned long long>(p.plan_compiles),
          static_cast<unsigned long long>(p.plan_invalidations),
          static_cast<unsigned long long>(p.plan_content_hits),
          static_cast<unsigned long long>(p.plan_invalidations -
                                          p.plan_content_hits),
          static_cast<unsigned long long>(p.plan_seq_fusions),
          static_cast<unsigned long long>(p.plan_seq_hits),
          static_cast<unsigned long long>(p.plan_evictions));
    }

    if (min_speedup > 0.0) {
      check(worst_speedup >= min_speedup,
            "bench_cycle: " + worst_kernel + " speedup " +
                std::to_string(worst_speedup) + "x below --min-speedup " +
                std::to_string(min_speedup) + "x");
      std::printf("bench_cycle: all kernels at or above %.2fx (worst: %s %.2fx)\n",
                  min_speedup, worst_kernel.c_str(), worst_speedup);
    }

    RunReport report;
    report.name = "bench_cycle";
    report.extra("schema_version", std::uint64_t{2})
        .extra("samples", std::uint64_t{samples})
        .extra("reps", std::uint64_t{reps})
        .extra("outputs_bit_identical", true);
    obs::JsonValue kernels_json = obs::JsonValue::array();
    for (const auto& p : points) {
      obs::JsonValue jp = obs::JsonValue::object();
      jp.set("kernel", p.name);
      jp.set("sim_cycles", p.cycles);
      jp.set("interpreter_cycles_per_s", p.cps[0]);
      jp.set("percycle_planned_cycles_per_s", p.cps[1]);
      jp.set("planned_cycles_per_s", p.cps[2]);
      jp.set("speedup", p.cps[2] / p.cps[0]);
      jp.set("plan_hit_rate", p.plan_hit_rate);
      jp.set("plan_compiles", p.plan_compiles);
      jp.set("plan_invalidations", p.plan_invalidations);
      jp.set("plan_content_hits", p.plan_content_hits);
      jp.set("plan_true_misses",
             p.plan_invalidations - p.plan_content_hits);
      jp.set("plan_evictions", p.plan_evictions);
      jp.set("plan_seq_fusions", p.plan_seq_fusions);
      jp.set("plan_seq_hits", p.plan_seq_hits);
      char digest[19];
      std::snprintf(digest, sizeof digest, "0x%016llx",
                    static_cast<unsigned long long>(p.outputs_fnv64));
      jp.set("outputs_fnv64", digest);
      kernels_json.push_back(std::move(jp));
    }
    report.extra("kernels", std::move(kernels_json));
    maybe_write_run_report(report, json_path);
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "bench_cycle: %s\n", e.what());
    return 1;
  }
}
