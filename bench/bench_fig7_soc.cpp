// Fig. 7 reproduction — "a foreseeable SoC": 12 mm2, 0.18 um die with
// a Ring-64 (3.4 mm2) next to an ARM7TDMI (0.54 mm2).
#include <cstdio>

#include "model/perf.hpp"
#include "model/soc.hpp"
#include "model/tech.hpp"
#include "obs/cli.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace sring::model;
  const std::string json_path =
      sring::obs::extract_option(argc, argv, "--json").value_or("");
  const SocFloorplan soc = foreseeable_soc();
  std::printf("Fig. 7: a foreseeable SoC (0.18 um)\n\n%s\n",
              soc.to_string().c_str());

  const TechNode t = tech_018um();
  std::printf("  Ring-64 on this die: %.0f MHz, %.0f MIPS peak, %.1f "
              "GB/s internal bandwidth\n",
              frequency_mhz(t, 64), peak_mips(64, frequency_mhz(t, 64)),
              peak_bandwidth_bytes_per_s(64, frequency_mhz(t, 64)) / 1e9);
  std::printf("  floorplan fits the 12 mm2 budget: %s\n",
              soc.fits() ? "yes" : "NO");

  sring::RunReport report;
  report.name = "fig7.soc";
  report.extra("frequency_mhz", frequency_mhz(t, 64))
      .extra("peak_mips", peak_mips(64, frequency_mhz(t, 64)))
      .extra("peak_bandwidth_gb_s",
             peak_bandwidth_bytes_per_s(64, frequency_mhz(t, 64)) / 1e9)
      .extra("fits", soc.fits());
  sring::maybe_write_run_report(report, json_path);
  return soc.fits() ? 0 : 1;
}
