// Scalability reproduction (§4.2 / §6): the architectural claim is
// that the ring scales because (a) routing never leaves adjacent
// layers (frequency flat in N), (b) area grows linearly, and (c) full
// dynamic reconfiguration stays a one-cycle operation at any size,
// whereas word-by-word rewriting grows with N.
//
// For each ring size we measure, in the cycle-accurate simulator:
//   * sustained Dnode ops/cycle with every Dnode in local MAC mode
//     (utilization stays 100% at every size),
//   * the measured cost of swapping the entire configuration by PAGE
//     (always 1 cycle) vs rewriting every word via WRCFG (O(N)),
// and report model area / frequency / peak MIPS alongside.
#include <cstdio>
#include <vector>

#include "asm/program_builder.hpp"
#include "model/perf.hpp"
#include "model/tech.hpp"
#include "obs/cli.hpp"
#include "sim/report.hpp"
#include "sim/system.hpp"

namespace {

using namespace sring;

RingGeometry geom_for(std::size_t dnodes) {
  std::size_t layers = dnodes / 2;
  std::size_t lanes = 2;
  while (layers > 32) {
    layers /= 2;
    lanes *= 2;
  }
  return {layers, lanes, 16};
}

DnodeInstr mac_local() {
  DnodeInstr mac;
  mac.op = DnodeOp::kMac;
  mac.src_a = DnodeSrc::kR1;
  mac.src_b = DnodeSrc::kR2;
  mac.src_c = DnodeSrc::kR0;
  mac.dst = DnodeDst::kR0;
  return mac;
}

/// Sustained ops/cycle with all Dnodes in stand-alone MAC mode.
double sustained_ops_per_cycle(const RingGeometry& g) {
  ProgramBuilder pb(g, "all_mac");
  PageBuilder page(g);
  for (std::size_t l = 0; l < g.layers; ++l) {
    for (std::size_t k = 0; k < g.lanes; ++k) {
      page.mode(l, k, DnodeMode::kLocal);
    }
  }
  pb.add_page(page);
  for (std::size_t d = 0; d < g.dnode_count(); ++d) {
    pb.local_program(d, {mac_local()});
  }
  pb.page_switch(0);
  pb.halt();

  System sys({g});
  sys.load(pb.build());
  sys.run_cycles(1000);
  return static_cast<double>(sys.stats().dnode_ops) /
         static_cast<double>(sys.stats().cycles);
}

/// Cycles to swap the full configuration via one PAGE instruction.
std::uint64_t page_swap_cycles(const RingGeometry& g) {
  ProgramBuilder pb(g, "page_swap");
  pb.add_page(PageBuilder(g));
  pb.page_switch(0);
  pb.halt();
  System sys({g});
  sys.load(pb.build());
  sys.run_until_halt(100);
  return sys.stats().ctrl_instructions - 1;  // exclude the HALT
}

/// Cycles to rewrite every Dnode instruction word with WRCFG.
std::uint64_t wordwise_swap_cycles(const RingGeometry& g) {
  ProgramBuilder pb(g, "wordwise_swap");
  for (std::size_t d = 0; d < g.dnode_count(); ++d) {
    pb.wrcfg(d, mac_local());
  }
  pb.halt();
  System sys({g});
  sys.load(pb.build());
  sys.run_until_halt(100000);
  return sys.stats().ctrl_instructions - 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      obs::extract_option(argc, argv, "--json").value_or("");
  const auto tech = model::tech_018um();
  std::printf("Scalability sweep (0.18 um model, measured simulator "
              "columns)\n\n");
  std::printf("  %7s %9s %9s %9s %11s %11s %13s\n", "dnodes", "area/mm2",
              "freq/MHz", "peakMIPS", "ops/cycle", "PAGE cost",
              "WRCFG cost");
  obs::JsonValue rows = obs::JsonValue::array();
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const RingGeometry g = geom_for(n);
    const double ops = sustained_ops_per_cycle(g);
    const auto page_cost = page_swap_cycles(g);
    const auto word_cost = wordwise_swap_cycles(g);
    std::printf("  %7zu %9.2f %9.0f %9.0f %11.1f %8llu cyc %10llu cyc\n",
                n, model::core_area_mm2(tech, n),
                model::frequency_mhz(tech, n),
                model::peak_mips(n, model::frequency_mhz(tech, n)), ops,
                static_cast<unsigned long long>(page_cost),
                static_cast<unsigned long long>(word_cost));
    obs::JsonValue row = obs::JsonValue::object();
    row.set("dnodes", std::uint64_t{n});
    row.set("area_mm2", model::core_area_mm2(tech, n));
    row.set("frequency_mhz", model::frequency_mhz(tech, n));
    row.set("ops_per_cycle", ops);
    row.set("page_swap_cycles", page_cost);
    row.set("wordwise_swap_cycles", word_cost);
    rows.push_back(std::move(row));
  }
  std::printf("\n  shape: area linear, frequency flat, utilization flat "
              "at 1 op/Dnode/cycle,\n  full reconfiguration 1 cycle via "
              "PAGE at every size vs O(N) word-by-word.\n");

  RunReport report;
  report.name = "scalability";
  report.extra("sweep", std::move(rows));
  maybe_write_run_report(report, json_path);
  return 0;
}
