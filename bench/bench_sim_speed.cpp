// Simulator micro-benchmarks (google-benchmark): how fast the
// cycle-accurate model itself runs, per ring size and per kernel.
// These are engineering numbers for users of the simulator, not paper
// reproductions.
#include <benchmark/benchmark.h>

#include "asm/program_builder.hpp"
#include "common/rng.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/mac_kernel.hpp"
#include "obs/cli.hpp"
#include "sim/system.hpp"

namespace {

using namespace sring;

RingGeometry geom_for(std::size_t dnodes) {
  std::size_t layers = dnodes / 2;
  std::size_t lanes = 2;
  while (layers > 32) {
    layers /= 2;
    lanes *= 2;
  }
  return {layers, lanes, 16};
}

void BM_SystemStep_AllMac(benchmark::State& state) {
  const RingGeometry g = geom_for(static_cast<std::size_t>(state.range(0)));
  ProgramBuilder pb(g, "all_mac");
  PageBuilder page(g);
  DnodeInstr mac;
  mac.op = DnodeOp::kMac;
  mac.src_a = DnodeSrc::kR1;
  mac.src_b = DnodeSrc::kR2;
  mac.src_c = DnodeSrc::kR0;
  mac.dst = DnodeDst::kR0;
  for (std::size_t l = 0; l < g.layers; ++l) {
    for (std::size_t k = 0; k < g.lanes; ++k) {
      page.mode(l, k, DnodeMode::kLocal);
    }
  }
  pb.add_page(page);
  for (std::size_t d = 0; d < g.dnode_count(); ++d) {
    pb.local_program(d, {mac});
  }
  pb.page_switch(0);
  pb.halt();

  System sys({g});
  sys.load(pb.build());
  for (auto _ : state) {
    sys.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["dnode_ops/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * g.dnode_count()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SystemStep_AllMac)->Arg(8)->Arg(16)->Arg(64)->Arg(256);

void BM_SpatialFir(benchmark::State& state) {
  const RingGeometry g{8, 2, 16};
  Rng rng(1);
  std::vector<Word> x(1024);
  for (auto& v : x) v = rng.next_word_in(-100, 100);
  const std::vector<Word> coeffs = {1, 2, 3, 4};
  for (auto _ : state) {
    const auto r = kernels::run_spatial_fir(g, x, coeffs);
    benchmark::DoNotOptimize(r.outputs.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_SpatialFir);

void BM_RunningMac(benchmark::State& state) {
  const RingGeometry g{4, 2, 16};
  std::vector<Word> a(1024, 3), b(1024, 7);
  for (auto _ : state) {
    const auto r = kernels::run_running_mac(g, a, b);
    benchmark::DoNotOptimize(r.partial_sums.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size()));
}
BENCHMARK(BM_RunningMac);

}  // namespace

// Custom main: `--json <path>` is ours (a RunReport of a fixed spatial
// FIR reference workload); everything else goes to google-benchmark
// (which has its own --benchmark_out machinery for timing data).
int main(int argc, char** argv) {
  const std::string json_path =
      obs::extract_option(argc, argv, "--json").value_or("");

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!json_path.empty()) {
    Rng rng(1);
    std::vector<Word> x(1024);
    for (auto& v : x) v = rng.next_word_in(-100, 100);
    const std::vector<Word> coeffs = {1, 2, 3, 4};
    const auto r =
        kernels::run_spatial_fir(RingGeometry{8, 2, 16}, x, coeffs);
    RunReport report = r.report;
    report.name = "sim_speed.reference_fir";
    write_run_report(report, json_path);
  }
  return 0;
}
