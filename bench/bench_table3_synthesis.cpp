// Table 3 reproduction — synthesis results.
//
// Paper (Synopsys estimates on ST CMOS):
//          D-node area   Core area   Est. frequency
//   0.25um   0.06 mm2     0.9 mm2      180 MHz
//   0.18um   0.04 mm2     0.7 mm2      200 MHz
//
// The technology model is fitted once (see src/model/tech.cpp) and
// must reproduce every published anchor; this bench prints the table
// and fails if any anchor drifts.
#include <cmath>
#include <cstdio>

#include "model/tech.hpp"
#include "obs/cli.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace sring::model;
  const std::string json_path =
      sring::obs::extract_option(argc, argv, "--json").value_or("");
  const TechNode nodes[] = {tech_025um(), tech_018um()};

  std::printf("Table 3: synthesis results (Ring-8 core)\n\n");
  std::printf("  %-8s %-12s %-10s %-14s\n", "techno", "D-node area",
              "core area", "est. frequency");
  bool ok = true;
  for (const auto& t : nodes) {
    const double core = core_area_mm2(t, 8);
    std::printf("  %-8s %6.2f mm2 %7.2f mm2 %9.0f MHz\n", t.name.c_str(),
                t.dnode_area_mm2, core, frequency_mhz(t, 8));
  }
  const double a25 = core_area_mm2(tech_025um(), 8);
  const double a18 = core_area_mm2(tech_018um(), 8);
  ok = ok && std::abs(a25 - 0.9) < 1e-9 && std::abs(a18 - 0.7) < 1e-9;

  std::printf("\n  extrapolations (paper cross-checks):\n");
  std::printf("    Ring-16 @0.25um: %.2f mm2  (Table 2 quotes 1.4 mm2)\n",
              core_area_mm2(tech_025um(), 16));
  std::printf("    Ring-64 @0.18um: %.2f mm2  (fig. 7 quotes 3.4 mm2)\n",
              core_area_mm2(tech_018um(), 64));
  ok = ok && std::abs(core_area_mm2(tech_025um(), 16) - 1.4) < 1e-9 &&
       std::abs(core_area_mm2(tech_018um(), 64) - 3.4) < 1e-9;

  std::printf("  all published anchors reproduced: %s\n",
              ok ? "yes" : "NO");

  sring::RunReport report;
  report.name = "table3.synthesis";
  sring::obs::JsonValue rows = sring::obs::JsonValue::array();
  for (const auto& t : nodes) {
    sring::obs::JsonValue r = sring::obs::JsonValue::object();
    r.set("techno", t.name);
    r.set("dnode_area_mm2", t.dnode_area_mm2);
    r.set("core_area_mm2", core_area_mm2(t, 8));
    r.set("frequency_mhz", frequency_mhz(t, 8));
    rows.push_back(std::move(r));
  }
  report.extra("rows", std::move(rows))
      .extra("ring16_025um_mm2", core_area_mm2(tech_025um(), 16))
      .extra("ring64_018um_mm2", core_area_mm2(tech_018um(), 64))
      .extra("anchors_ok", ok);
  sring::maybe_write_run_report(report, json_path);
  return ok ? 0 : 1;
}
