// §5.1 comparative results reproduction.
//
// Paper: "A 8 Dnodes, 16 bits wide data buses version has a maximal
// computing power of 1600 MIPS at the typical 200 MHz evaluated
// functional frequency, quite impressive compared to the 400 MIPS of a
// Pentium II 450 MHz processor.  The theoretical maximum bandwidth of
// this version of the structure is about 3 Gbytes/s, limited to 250
// Mbytes/s in our implemented communication protocol (a PCI based
// bus)."
//
// Peak numbers come from the rate model; sustained numbers are
// measured by running a FIR workload on the cycle-accurate Ring-8 with
// an ideal link and with a PCI-rate link, and the Pentium-II figure
// from the scalar cost model executing the same filter.
#include <cstdio>
#include <vector>

#include "baseline/scalar_cpu.hpp"
#include "common/rng.hpp"
#include "kernels/fir_kernel.hpp"
#include "model/perf.hpp"
#include "obs/cli.hpp"

int main(int argc, char** argv) {
  using namespace sring;
  const std::string json_path =
      obs::extract_option(argc, argv, "--json").value_or("");
  const RingGeometry ring8{4, 2, 16};
  const double clock_mhz = 200.0;

  std::printf("Comparative results (paper §5.1)\n\n");
  std::printf("  peak rates (model):\n");
  std::printf("    Ring-8 @200 MHz: %6.0f MIPS (paper: 1600 MIPS)\n",
              model::peak_mips(8, clock_mhz));
  std::printf("    Ring-8 host bandwidth: %.1f GB/s (paper: ~3 GB/s)\n",
              model::peak_bandwidth_bytes_per_s(8, clock_mhz) / 1e9);

  // Workload: a 3-tap FIR over 4096 samples.
  Rng rng(77);
  std::vector<Word> x(4096);
  for (auto& v : x) v = rng.next_word_in(-128, 127);
  const std::vector<Word> coeffs = {3, to_word(-2), 5};

  const auto ring = kernels::run_spatial_fir(ring8, x, coeffs);
  std::printf("\n  sustained on a 3-tap FIR, 4096 samples:\n");
  std::printf("    Ring-8, ideal link: %7.1f MIPS, %6.1f MB/s in+out, "
              "%.2f cycles/sample\n",
              model::sustained_mips(ring.stats, clock_mhz),
              model::sustained_bandwidth_bytes_per_s(ring.stats,
                                                     clock_mhz) / 1e6,
              ring.cycles_per_sample);

  // PCI-limited link: 250 MB/s at 200 MHz.
  const LinkRate pci =
      LinkRate::from_bytes_per_second(250e6, clock_mhz * 1e6);
  const auto ring_pci = kernels::run_spatial_fir(ring8, x, coeffs, pci);
  std::printf("    Ring-8, PCI link:   %7.1f MIPS, %6.1f MB/s in+out, "
              "%.2f cycles/sample (stalled %llu cycles)\n",
              model::sustained_mips(ring_pci.stats, clock_mhz),
              model::sustained_bandwidth_bytes_per_s(ring_pci.stats,
                                                     clock_mhz) / 1e6,
              ring_pci.cycles_per_sample,
              static_cast<unsigned long long>(
                  ring_pci.stats.ring_stall_cycles));

  const auto scalar = baseline::scalar_fir(x, coeffs);
  std::printf("    Pentium II 450 MHz (scalar model): %7.1f MIPS "
              "(paper: ~400 MIPS)\n",
              scalar.stats.mips(450e6));

  const bool outputs_match = ring.outputs == scalar.outputs &&
                             ring.outputs == ring_pci.outputs;
  std::printf("\n  all engines produced identical filter output: %s\n",
              outputs_match ? "yes" : "NO");

  RunReport report = ring.report;
  report.name = "comparative_mips";
  report.extra("peak_mips", model::peak_mips(8, clock_mhz))
      .extra("sustained_mips_ideal",
             model::sustained_mips(ring.stats, clock_mhz))
      .extra("sustained_mips_pci",
             model::sustained_mips(ring_pci.stats, clock_mhz))
      .extra("pci_stall_cycles", ring_pci.stats.ring_stall_cycles)
      .extra("scalar_mips", scalar.stats.mips(450e6))
      .extra("outputs_match", outputs_match);
  maybe_write_run_report(report, json_path);
  return outputs_match ? 0 : 1;
}
