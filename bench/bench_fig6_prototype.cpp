// Fig. 6 reproduction — the APEX-board prototype flow as a measurable
// pipeline: object code from the assembler ("PRG"), a 64x64 image
// ("IMAGE"), results into "VIDEO", with cycle accounting.
#include <cstdio>

#include "asm/assembler.hpp"
#include "asm/object_file.hpp"
#include "common/image.hpp"
#include "obs/cli.hpp"
#include "sim/report.hpp"
#include "sim/system.hpp"

namespace {

constexpr const char* kSource = R"(
.name fig6_bench
.ring 4 2 16
.controller
    page run
    halt
.page run
    dnode 0.0 { pass none, in1 out }
    switch 0.0 in1=host
    dnode 1.0 { absdiff none, in1, fifo1 host }
    switch 1.0 in1=prev0 fifo1=fb(1,0,0)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  const std::string json_path =
      obs::extract_option(argc, argv, "--json").value_or("");
  // Assemble -> serialize -> parse back: the full PRG-memory flow.
  const auto object = serialize_program(assemble(kSource));
  const LoadableProgram prog = deserialize_program(object);

  const Image image = Image::synthetic(64, 64, 1964);
  System sys({prog.geometry});
  sys.load(prog);
  sys.host().send(image.pixels());
  sys.run_until_outputs(image.size(), 100000);

  const auto stats = sys.stats();
  std::uint64_t checksum = 0;
  for (const Word w : sys.host().take_received()) checksum += w;

  std::printf("Fig. 6 prototype flow (Ring-8, 64x64 IMAGE -> VIDEO)\n\n");
  std::printf("  object code: %zu bytes (PRG memory)\n", object.size());
  std::printf("  cycles: %llu for %zu pixels (%.3f cycles/pixel)\n",
              static_cast<unsigned long long>(stats.cycles), image.size(),
              static_cast<double>(stats.cycles) /
                  static_cast<double>(image.size()));
  std::printf("  Dnode ops: %llu, words in/out: %llu/%llu\n",
              static_cast<unsigned long long>(stats.dnode_ops),
              static_cast<unsigned long long>(stats.host_words_in),
              static_cast<unsigned long long>(stats.host_words_out));
  std::printf("  VIDEO checksum: %llu\n",
              static_cast<unsigned long long>(checksum));
  std::printf("  at 200 MHz this frame takes %.1f us (paper prototype "
              "ran at the APEX's lower clock)\n",
              static_cast<double>(stats.cycles) / 200.0);

  RunReport report = RunReport::from_system("fig6.prototype", sys);
  report.extra("object_bytes", std::uint64_t{object.size()})
      .extra("pixels", std::uint64_t{image.size()})
      .extra("cycles_per_pixel",
             static_cast<double>(stats.cycles) /
                 static_cast<double>(image.size()))
      .extra("video_checksum", checksum);
  maybe_write_run_report(report, json_path);
  return 0;
}
