// bench_gemm — operand-traffic reduction of the tiled narrow-int
// GEMM/conv workload family (src/tile/).
//
// Sweeps tile shapes, dtypes and dataflow mappings over the rt worker
// fleet and reports, per point, the scratchpad staging behaviour:
// bytes filled vs bytes the tile schedule streamed into jobs, their
// ratio (the traffic reduction a host-side scratchpad buys over
// streaming every operand tile per job), hit/refill counts and the
// planner's up-front prediction.  Every point is verified bit-exact
// against the scalar int GEMM reference before its numbers count —
// a traffic figure only matters if the lowered fleet result is the
// mathematically correct one.
//
// The last point lowers a small conv2d through im2col onto the same
// engine, so the family's second workload is covered by the same
// bit-exactness bar.
//
// Usage:
//   bench_gemm [--workers N] [--scratch-tiles N] [--json <path>]
//              [--min-reuse X]
//
// --min-reuse is the regression gate the CI smoke uses: the run fails
// unless at least one 64x64x64 int8 mapping reaches that traffic
// reduction factor (the ISSUE acceptance bar is 1.5x; the default 0
// disables the gate).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/cli.hpp"
#include "rt/runtime.hpp"
#include "sim/report.hpp"
#include "tile/gemm_runner.hpp"

namespace {

using namespace sring;

struct Point {
  std::string name;
  tile::GemmSpec spec;
  std::size_t scratch_tiles = 128;
  bool gate_candidate = false;  ///< counts toward the --min-reuse gate
};

struct Measured {
  Point point;
  tile::GemmResult result;
  double seconds = 0.0;
};

Measured run_point(rt::Runtime& rt, const Point& p, std::uint64_t seed) {
  const auto a =
      tile::random_operand(p.spec.m * p.spec.k, p.spec.dtype, seed);
  const auto b =
      tile::random_operand(p.spec.k * p.spec.n, p.spec.dtype, seed + 1);

  tile::GemmRunConfig cfg;
  cfg.scratch_tiles = p.scratch_tiles;
  const auto t0 = std::chrono::steady_clock::now();
  tile::GemmResult res = tile::run_gemm(rt, cfg, p.spec, a, b);
  const auto t1 = std::chrono::steady_clock::now();

  check(res.c == tile::gemm_reference(p.spec, a, b),
        "bench_gemm: " + p.name + " diverged from the scalar reference");
  // The planner's prediction is part of the contract: a traffic
  // number we report must be the one plan_gemm promised up front.
  check(res.scratch_hits == res.schedule.expected_hits &&
            res.scratch_refills == res.schedule.expected_refills,
        "bench_gemm: " + p.name + " observed scratchpad behaviour "
        "diverged from the planner prediction");

  Measured m;
  m.point = p;
  m.result = std::move(res);
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  return m;
}

Measured run_conv_point(rt::Runtime& rt, std::uint64_t seed) {
  tile::Conv2dSpec conv;
  conv.in_h = 16;
  conv.in_w = 16;
  conv.kh = 3;
  conv.kw = 3;
  conv.filters = 8;
  conv.dtype = tile::Dtype::kInt8;
  conv.shift = 6;
  conv.validate();
  const auto filters = tile::random_operand(
      conv.filters * conv.kh * conv.kw, conv.dtype, seed);
  const auto image =
      tile::random_operand(conv.in_h * conv.in_w, conv.dtype, seed + 1);

  tile::GemmRunConfig cfg;
  const auto t0 = std::chrono::steady_clock::now();
  tile::GemmResult res = tile::run_conv2d(rt, cfg, conv, filters, image);
  const auto t1 = std::chrono::steady_clock::now();

  const tile::GemmSpec as_gemm = conv.as_gemm();
  check(res.c == tile::gemm_reference(as_gemm, filters,
                                      tile::im2col(conv, image)),
        "bench_gemm: conv2d diverged from the im2col'd scalar reference");

  Measured m;
  m.point.name = "conv16x16.3x3.f8.int8.os";
  m.point.spec = as_gemm;
  m.point.scratch_tiles = cfg.scratch_tiles;
  m.result = std::move(res);
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  try {
    const std::string json_path =
        obs::extract_option(argc, argv, "--json").value_or("");
    const std::size_t workers = std::strtoul(
        obs::extract_option(argc, argv, "--workers").value_or("2").c_str(),
        nullptr, 10);
    const std::size_t scratch = std::strtoul(
        obs::extract_option(argc, argv, "--scratch-tiles")
            .value_or("128")
            .c_str(),
        nullptr, 10);
    const double min_reuse = std::strtod(
        obs::extract_option(argc, argv, "--min-reuse").value_or("0").c_str(),
        nullptr);
    check(workers >= 1, "bench_gemm: --workers must be at least 1");
    check(scratch >= 1, "bench_gemm: --scratch-tiles must be at least 1");

    rt::RuntimeConfig rcfg;
    rcfg.workers = workers;
    rt::Runtime rt(rcfg);

    const auto spec = [](std::size_t m, std::size_t k, std::size_t n,
                         tile::Dtype dtype, unsigned shift,
                         tile::Mapping mapping, std::size_t tile_n) {
      tile::GemmSpec s;
      s.m = m;
      s.k = k;
      s.n = n;
      s.dtype = dtype;
      s.shift = shift;
      s.mapping = mapping;
      s.tile_n = tile_n;
      return s;
    };
    using tile::Dtype;
    using tile::Mapping;
    std::vector<Point> points = {
        // The acceptance shape, both mappings and two column-tile
        // widths.  These are the --min-reuse gate candidates.
        {"64x64x64.int8.os.t8",
         spec(64, 64, 64, Dtype::kInt8, 5, Mapping::kOutputStationary, 8),
         scratch, true},
        {"64x64x64.int8.ws.t8",
         spec(64, 64, 64, Dtype::kInt8, 5, Mapping::kWeightStationary, 8),
         scratch, true},
        {"64x64x64.int8.os.t16",
         spec(64, 64, 64, Dtype::kInt8, 5, Mapping::kOutputStationary, 16),
         scratch, true},
        {"64x64x64.int8.ws.t16",
         spec(64, 64, 64, Dtype::kInt8, 5, Mapping::kWeightStationary, 16),
         scratch, true},
        // int16 readback on the same shape.
        {"64x64x64.int16.os.t8",
         spec(64, 64, 64, Dtype::kInt16, 7, Mapping::kOutputStationary, 8),
         scratch, false},
        // A capacity-starved run: the scratchpad is far smaller than
        // the working set, so the mappings have to earn their reuse.
        {"64x64x64.int8.os.t8.s16",
         spec(64, 64, 64, Dtype::kInt8, 5, Mapping::kOutputStationary, 8),
         16, false},
        {"64x64x64.int8.ws.t8.s16",
         spec(64, 64, 64, Dtype::kInt8, 5, Mapping::kWeightStationary, 8),
         16, false},
        // Ragged shape: padded edge tiles must stay bit-exact too.
        {"40x24x56.int8.os.t8",
         spec(40, 24, 56, Dtype::kInt8, 4, Mapping::kOutputStationary, 8),
         scratch, false},
        {"40x24x56.int8.ws.t8",
         spec(40, 24, 56, Dtype::kInt8, 4, Mapping::kWeightStationary, 8),
         scratch, false},
    };

    std::printf("bench_gemm: workers=%zu scratch=%zu (%zu points + conv)\n",
                rt.worker_count(), scratch, points.size());

    std::vector<Measured> measured;
    std::uint64_t seed = 0x6E44ull;
    for (const Point& p : points) {
      measured.push_back(run_point(rt, p, seed));
      seed += 2;
    }
    measured.push_back(run_conv_point(rt, seed));

    double best_gate_reuse = 0.0;
    std::string best_gate_name;
    for (const Measured& m : measured) {
      const tile::GemmResult& r = m.result;
      if (m.point.gate_candidate &&
          r.traffic_reduction > best_gate_reuse) {
        best_gate_reuse = r.traffic_reduction;
        best_gate_name = m.point.name;
      }
      std::printf(
          "  %-26s %4llu jobs  %8llu cycles  %6llu hits / %4llu refills"
          "  %7llu B filled / %7llu B streamed  reuse %5.2fx  (%.3fs)\n",
          m.point.name.c_str(),
          static_cast<unsigned long long>(r.jobs),
          static_cast<unsigned long long>(r.sim_cycles),
          static_cast<unsigned long long>(r.scratch_hits),
          static_cast<unsigned long long>(r.scratch_refills),
          static_cast<unsigned long long>(r.bytes_filled),
          static_cast<unsigned long long>(r.schedule.streamed_bytes),
          r.traffic_reduction, m.seconds);
    }
    std::printf(
        "bench_gemm: all %zu points bit-exact against the scalar "
        "reference; best 64x64x64 int8 traffic reduction %.2fx (%s)\n",
        measured.size(), best_gate_reuse, best_gate_name.c_str());

    if (min_reuse > 0.0) {
      check(best_gate_reuse >= min_reuse,
            "bench_gemm: best 64x64x64 int8 traffic reduction " +
                std::to_string(best_gate_reuse) + "x below --min-reuse " +
                std::to_string(min_reuse) + "x");
      std::printf("bench_gemm: --min-reuse %.2fx gate passed\n", min_reuse);
    }

    RunReport report;
    report.name = "bench_gemm";
    report.extra("schema_version", std::uint64_t{1})
        .extra("workers", std::uint64_t{rt.worker_count()})
        .extra("scratch_tiles", std::uint64_t{scratch})
        .extra("outputs_bit_identical", true)
        .extra("best_64cubed_int8_reuse", best_gate_reuse)
        .extra("best_64cubed_int8_point", best_gate_name);
    obs::JsonValue sweep = obs::JsonValue::array();
    for (const Measured& m : measured) {
      const tile::GemmResult& r = m.result;
      obs::JsonValue jp = obs::JsonValue::object();
      jp.set("point", m.point.name);
      jp.set("m", std::uint64_t{m.point.spec.m});
      jp.set("k", std::uint64_t{m.point.spec.k});
      jp.set("n", std::uint64_t{m.point.spec.n});
      jp.set("dtype", std::string(tile::dtype_name(m.point.spec.dtype)));
      jp.set("mapping",
             std::string(tile::mapping_name(m.point.spec.mapping)));
      jp.set("tile_n", std::uint64_t{m.point.spec.tile_n});
      jp.set("scratch_tiles", std::uint64_t{m.point.scratch_tiles});
      jp.set("tile_jobs", r.jobs);
      jp.set("sim_cycles", r.sim_cycles);
      jp.set("scratch_hits", r.scratch_hits);
      jp.set("scratch_refills", r.scratch_refills);
      jp.set("scratch_evictions", r.scratch_evictions);
      jp.set("bytes_filled", r.bytes_filled);
      jp.set("bytes_saved", r.bytes_saved);
      jp.set("streamed_bytes", r.schedule.streamed_bytes);
      jp.set("traffic_reduction", r.traffic_reduction);
      jp.set("seconds", m.seconds);
      sweep.push_back(std::move(jp));
    }
    report.extra("sweep", std::move(sweep));
    maybe_write_run_report(report, json_path);
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "bench_gemm: %s\n", e.what());
    return 1;
  }
}
