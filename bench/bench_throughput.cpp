// bench_throughput — fleet throughput of the batch-execution runtime.
//
// Runs the same deterministic job batch through rt::Runtime at a
// sweep of worker counts and reports jobs/s, speedup over one worker,
// and scaling efficiency (speedup / workers).  Every sweep point
// re-runs the identical batch and the outputs are compared word for
// word against the 1-worker reference — a throughput number only
// counts if the fleet stayed bit-exact.
//
// Job mixes:
//   fir    spatial 4-tap FIR, 256 samples/job (distinct input per job)
//   me     full-search 8x8 motion estimation, ±2 px (25 candidates)
//   mixed  fir / me / dwt53 / matvec8 round-robin
//
// Usage:
//   bench_throughput [--mix fir|me|mixed] [--batch N]
//                    [--workers 1,2,4,8] [--queue N] [--json <path>]
//                    [--min-speedup X]
//
// --min-speedup is a regression gate (mirroring bench_cycle's): the
// run fails unless the best multi-worker speedup over the 1-worker
// point reaches that factor.  On a single-core host the fleet can
// only time-slice, so the gate reports itself not measurable and
// passes — the same discipline as the null efficiency column.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/image.hpp"
#include "common/rng.hpp"
#include "dsp/matvec.hpp"
#include "kernels/dwt_kernel.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/jobs.hpp"
#include "kernels/matvec_kernel.hpp"
#include "kernels/motion_estimation.hpp"
#include "obs/cli.hpp"
#include "rt/runtime.hpp"
#include "sim/report.hpp"

namespace {

using namespace sring;

constexpr RingGeometry kGeom{8, 2, 16};
constexpr int kMeRange = 2;

Image random_image(Rng& rng, std::size_t w, std::size_t h) {
  Image img(w, h);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      img.at(x, y) = rng.next_word_in(0, 255);
    }
  }
  return img;
}

std::vector<Word> random_signal(Rng& rng, std::size_t n) {
  std::vector<Word> x(n);
  for (auto& w : x) w = rng.next_word_in(-128, 127);
  return x;
}

/// Deterministic batch: job i's input derives from seed+i only, so
/// every sweep point (and every rerun of the bench) builds the exact
/// same batch.  Programs are built once per kind and shared.
std::vector<rt::Job> build_batch(const std::string& mix, std::size_t count) {
  const std::vector<Word> coeffs{1, static_cast<Word>(-2), 3, 4};
  const dsp::Matrix8 dct = dsp::dct8_matrix_q7();

  auto fir_prog = std::make_shared<const LoadableProgram>(
      kernels::make_spatial_fir_program(kGeom, coeffs));
  const std::size_t me_batches =
      (kernels::sad_displacements(kMeRange).size() + kGeom.layers - 1) /
      kGeom.layers;
  auto me_prog = std::make_shared<const LoadableProgram>(
      kernels::make_sad_engine_program(kGeom, 64, me_batches));
  auto dwt_prog = std::make_shared<const LoadableProgram>(
      kernels::make_dwt53_program(kGeom));

  std::vector<rt::Job> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(0xB00537ull + i);
    std::string kind = mix;
    if (mix == "mixed") {
      static const char* kinds[] = {"fir", "me", "dwt", "matvec"};
      kind = kinds[i % 4];
    }
    if (kind == "fir") {
      jobs.push_back(kernels::make_spatial_fir_job(
          kGeom, random_signal(rng, 256), coeffs, fir_prog));
    } else if (kind == "me") {
      const Image ref = random_image(rng, 16, 16);
      const Image cand = random_image(rng, 16, 16);
      jobs.push_back(kernels::make_motion_estimation_job(
          kGeom, ref, 4, 4, cand, kMeRange, me_prog));
    } else if (kind == "dwt") {
      jobs.push_back(
          kernels::make_dwt53_job(kGeom, random_signal(rng, 256), dwt_prog));
    } else if (kind == "matvec") {
      // matvec programs bake the block count; 8 blocks per job.
      jobs.push_back(
          kernels::make_matvec8_job(kGeom, dct, random_signal(rng, 64)));
    } else {
      throw SimError("bench_throughput: unknown mix '" + mix + "'");
    }
  }
  return jobs;
}

std::vector<std::size_t> parse_workers(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                   : comma - pos);
    const unsigned long v = std::strtoul(tok.c_str(), nullptr, 10);
    check(v >= 1, "bench_throughput: bad --workers entry: " + tok);
    out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  check(!out.empty(), "bench_throughput: empty --workers list");
  return out;
}

struct SweepPoint {
  std::size_t workers = 0;
  double seconds = 0.0;
  double jobs_per_s = 0.0;
  double speedup = 1.0;
  double efficiency = 1.0;
  std::uint64_t sim_cycles = 0;
  std::uint64_t fast_resets = 0;
  std::uint64_t full_loads = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  try {
    const std::string json_path =
        obs::extract_option(argc, argv, "--json").value_or("");
    const std::string mix =
        obs::extract_option(argc, argv, "--mix").value_or("fir");
    const std::size_t batch = std::strtoul(
        obs::extract_option(argc, argv, "--batch").value_or("64").c_str(),
        nullptr, 10);
    const std::vector<std::size_t> worker_counts = parse_workers(
        obs::extract_option(argc, argv, "--workers").value_or("1,2,4,8"));
    const std::size_t queue_cap = std::strtoul(
        obs::extract_option(argc, argv, "--queue").value_or("64").c_str(),
        nullptr, 10);
    const double min_speedup = std::strtod(
        obs::extract_option(argc, argv, "--min-speedup").value_or("0").c_str(),
        nullptr);
    check(batch >= 1, "bench_throughput: --batch must be at least 1");

    std::printf("bench_throughput: mix=%s batch=%zu queue=%zu host_cores=%u\n",
                mix.c_str(), batch, queue_cap,
                std::thread::hardware_concurrency());

    // Parallel efficiency (speedup / workers) is meaningless when the
    // host can only run one worker at a time: every sweep point just
    // time-slices a single core.  Report null instead of a number
    // that looks like a scaling regression.
    const bool multicore = std::thread::hardware_concurrency() > 1;
    if (!multicore) {
      std::printf(
          "  WARNING: single-core host — parallel efficiency not "
          "measurable, reporting null\n");
    }

    std::vector<std::vector<Word>> reference;  // outputs at 1 worker
    std::vector<SweepPoint> points;
    for (const std::size_t w : worker_counts) {
      std::vector<rt::Job> jobs = build_batch(mix, batch);

      rt::RuntimeConfig cfg;
      cfg.workers = w;
      cfg.queue_capacity = queue_cap;
      rt::Runtime runtime(cfg);

      const auto t0 = std::chrono::steady_clock::now();
      const std::vector<rt::JobResult> results =
          runtime.submit_batch(std::move(jobs));
      const auto t1 = std::chrono::steady_clock::now();

      SweepPoint p;
      p.workers = w;
      p.seconds = std::chrono::duration<double>(t1 - t0).count();
      p.jobs_per_s = static_cast<double>(batch) / p.seconds;

      for (std::size_t i = 0; i < results.size(); ++i) {
        check(results[i].ok, "job " + std::to_string(i) +
                                 " failed: " + results[i].error);
      }
      if (reference.empty()) {
        for (const auto& r : results) reference.push_back(r.outputs);
      } else {
        for (std::size_t i = 0; i < results.size(); ++i) {
          check(results[i].outputs == reference[i],
                "NON-DETERMINISTIC: job " + std::to_string(i) +
                    " diverged at " + std::to_string(w) + " workers");
        }
      }

      const obs::Registry m = runtime.metrics();
      if (const auto* c = m.find_counter("rt.sim_cycles")) {
        p.sim_cycles = c->value();
      }
      if (const auto* c = m.find_counter("rt.pool.fast_resets")) {
        p.fast_resets = c->value();
      }
      if (const auto* c = m.find_counter("rt.pool.full_loads")) {
        p.full_loads = c->value();
      }
      p.speedup = points.empty()
                      ? 1.0
                      : points.front().jobs_per_s > 0
                            ? p.jobs_per_s / points.front().jobs_per_s
                            : 0.0;
      p.efficiency = p.speedup / static_cast<double>(w);
      points.push_back(p);

      char eff[32];
      if (multicore) {
        std::snprintf(eff, sizeof(eff), "%.0f%%", 100.0 * p.efficiency);
      } else {
        std::snprintf(eff, sizeof(eff), "n/a");
      }
      std::printf(
          "  workers=%zu  %8.1f jobs/s  (%.3fs, speedup %.2fx, "
          "efficiency %s, pool fast-resets %llu / loads %llu)\n",
          w, p.jobs_per_s, p.seconds, p.speedup, eff,
          static_cast<unsigned long long>(p.fast_resets),
          static_cast<unsigned long long>(p.full_loads));
    }

    double best_speedup = 0.0;
    std::size_t best_workers = 0;
    for (const auto& p : points) {
      if (p.workers > 1 && p.speedup > best_speedup) {
        best_speedup = p.speedup;
        best_workers = p.workers;
      }
    }
    if (min_speedup > 0.0) {
      if (!multicore || best_workers == 0) {
        std::printf(
            "bench_throughput: --min-speedup gate not measurable "
            "(single-core host or no multi-worker point), passing\n");
      } else {
        check(best_speedup >= min_speedup,
              "bench_throughput: best multi-worker speedup " +
                  std::to_string(best_speedup) + "x (at " +
                  std::to_string(best_workers) +
                  " workers) below --min-speedup " +
                  std::to_string(min_speedup) + "x");
        std::printf(
            "bench_throughput: --min-speedup %.2fx gate passed "
            "(best %.2fx at %zu workers)\n",
            min_speedup, best_speedup, best_workers);
      }
    }

    RunReport report;
    report.name = "bench_throughput";
    report.extra("schema_version", std::uint64_t{1})
        .extra("mix", mix)
        .extra("batch", std::uint64_t{batch})
        .extra("queue_capacity", std::uint64_t{queue_cap})
        .extra("host_cores",
               std::uint64_t{std::thread::hardware_concurrency()})
        .extra("best_multiworker_speedup", best_speedup)
        .extra("outputs_bit_identical", true);
    if (!multicore) {
      report.extra("warning",
                   std::string("single-core host: parallel efficiency "
                               "not measurable"));
    }
    obs::JsonValue sweep = obs::JsonValue::array();
    for (const auto& p : points) {
      obs::JsonValue jp = obs::JsonValue::object();
      jp.set("workers", std::uint64_t{p.workers});
      jp.set("seconds", p.seconds);
      jp.set("jobs_per_s", p.jobs_per_s);
      jp.set("speedup_vs_1", p.speedup);
      jp.set("efficiency", multicore ? obs::JsonValue(p.efficiency)
                                     : obs::JsonValue(nullptr));
      jp.set("sim_cycles", p.sim_cycles);
      jp.set("pool_fast_resets", p.fast_resets);
      jp.set("pool_full_loads", p.full_loads);
      sweep.push_back(std::move(jp));
    }
    report.extra("sweep", std::move(sweep));
    maybe_write_run_report(report, json_path);
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "bench_throughput: %s\n", e.what());
    return 1;
  }
}
