// bench_dfg_compile — latency of the svc compile service.
//
// Builds a family of distinct DFGs (FIR-shaped MAC chains whose
// constants vary, so every graph has a unique content hash), then
// measures:
//
//   cold   encode -> get_or_compile miss: map + golden-validate + cache
//   hot    get_or_compile hit: hash the blob, bump the LRU, return
//
// The hit path never decodes the blob, so the hot number is the real
// steady-state cost a server pays per repeat submission.
//
// Usage:
//   bench_dfg_compile [--graphs N] [--taps K] [--hits M] [--json <path>]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/cli.hpp"
#include "sim/report.hpp"
#include "svc/compile_service.hpp"
#include "svc/dfg_codec.hpp"
#include "svc/dfg_text.hpp"

namespace {

using namespace sring;

constexpr RingGeometry kGeom{8, 2, 16};

/// K-tap transposed FIR as DFG text; the coefficient values carry the
/// variant id so each graph hashes differently.
std::string fir_graph_text(std::size_t taps, std::size_t variant) {
  std::string text = "x input\n";
  for (std::size_t t = 0; t < taps; ++t) {
    // 1021 is prime, so graphs are pairwise distinct for any
    // --graphs up to 1021 (mod-17 would collide at 18).
    const long coeff =
        static_cast<long>((variant * 31 + t * 7) % 1021) - 510;
    text += "c" + std::to_string(t) + " const " + std::to_string(coeff) +
            "\n";
    text += "m" + std::to_string(t) + " mul x c" + std::to_string(t) + "\n";
  }
  std::string acc = "m0";
  for (std::size_t t = 1; t < taps; ++t) {
    text += "d" + std::to_string(t) + " delay " + acc + " 1\n";
    text += "a" + std::to_string(t) + " add m" + std::to_string(t) + " d" +
            std::to_string(t) + "\n";
    acc = "a" + std::to_string(t);
  }
  text += "y output " + acc + "\n";
  return text;
}

double us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sring;
  try {
    const std::string json_path =
        obs::extract_option(argc, argv, "--json").value_or("");
    const std::size_t graphs = std::strtoul(
        obs::extract_option(argc, argv, "--graphs").value_or("32").c_str(),
        nullptr, 10);
    const std::size_t taps = std::strtoul(
        obs::extract_option(argc, argv, "--taps").value_or("4").c_str(),
        nullptr, 10);
    const std::size_t hits = std::strtoul(
        obs::extract_option(argc, argv, "--hits").value_or("64").c_str(),
        nullptr, 10);
    check(graphs >= 1 && taps >= 1 && hits >= 1,
          "bench_dfg_compile: --graphs, --taps and --hits must be >= 1");

    svc::CompileServiceConfig cfg;
    cfg.cache_capacity = graphs;  // the whole family stays resident
    svc::CompileService service(cfg);

    std::vector<std::vector<std::uint8_t>> blobs;
    blobs.reserve(graphs);
    for (std::size_t v = 0; v < graphs; ++v) {
      blobs.push_back(
          svc::encode_dfg(svc::parse_dfg_text(fir_graph_text(taps, v))));
    }

    std::printf("bench_dfg_compile: graphs=%zu taps=%zu hits=%zu "
                "blob=%zuB geom=%zux%zu\n",
                graphs, taps, hits, blobs.front().size(), kGeom.layers,
                kGeom.lanes);

    const auto t_cold = std::chrono::steady_clock::now();
    for (const auto& blob : blobs) {
      const auto r = service.get_or_compile(blob, kGeom);
      check(!r.cache_hit, "bench_dfg_compile: unexpected cold-pass hit");
    }
    const double cold_us = us_since(t_cold);

    const auto t_hot = std::chrono::steady_clock::now();
    for (std::size_t m = 0; m < hits; ++m) {
      for (const auto& blob : blobs) {
        const auto r = service.get_or_compile(blob, kGeom);
        check(r.cache_hit, "bench_dfg_compile: unexpected hot-pass miss");
      }
    }
    const double hot_us = us_since(t_hot);

    const double cold_per = cold_us / static_cast<double>(graphs);
    const double hot_per =
        hot_us / static_cast<double>(graphs * hits);
    std::printf("  cold compile: %8.1f us/graph  (map + validate + cache)\n",
                cold_per);
    std::printf("  cache hit:    %8.3f us/graph  (hash + LRU bump)\n",
                hot_per);
    std::printf("  hit speedup:  %8.1fx\n",
                hot_per > 0 ? cold_per / hot_per : 0.0);

    RunReport report;
    report.name = "bench_dfg_compile";
    report.extra("schema_version", std::uint64_t{1})
        .extra("graphs", std::uint64_t{graphs})
        .extra("taps", std::uint64_t{taps})
        .extra("hits_per_graph", std::uint64_t{hits})
        .extra("blob_bytes", std::uint64_t{blobs.front().size()})
        .extra("cold_us_per_graph", cold_per)
        .extra("hit_us_per_graph", hot_per)
        .extra("hit_speedup", hot_per > 0 ? cold_per / hot_per : 0.0);
    maybe_write_run_report(report, json_path);
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "bench_dfg_compile: %s\n", e.what());
    return 1;
  }
}
