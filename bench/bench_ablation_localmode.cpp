// Ablation A1 (DESIGN.md) — what the dual-layer configuration scheme
// buys (paper §6): a resource-shared FIR (fewer multipliers than taps)
// is only practical if the functionality can change every cycle.  We
// run the same filter three ways and compare measured cycles/sample:
//
//   * spatial systolic (one multiplier per tap, global mode, static),
//   * resource-shared with PAGE swaps (the paper's dedicated
//     configuration instruction set: T+4 cycles/sample),
//   * resource-shared with word-by-word WRCFG/WRSW rewriting (the
//     naive baseline the paper argues against).
//
// Also: local (stand-alone) mode vs controller-driven execution for a
// plain MAC stream — local mode needs zero controller instructions in
// steady state.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "dsp/fir.hpp"
#include "kernels/fir_kernel.hpp"
#include "kernels/mac_kernel.hpp"
#include "obs/cli.hpp"

int main(int argc, char** argv) {
  using namespace sring;
  const std::string json_path =
      obs::extract_option(argc, argv, "--json").value_or("");
  const RingGeometry ring16{8, 2, 16};

  Rng rng(4242);
  std::vector<Word> x(512);
  for (auto& v : x) v = rng.next_word_in(-100, 100);

  std::printf("Ablation: configuration mechanisms on the same FIR\n\n");
  std::printf("  %5s %22s %22s %22s\n", "taps", "spatial (static)",
              "paged (dual-layer)", "wordwise (naive)");
  obs::JsonValue rows = obs::JsonValue::array();
  for (const std::size_t taps : {2u, 3u, 4u}) {
    std::vector<Word> coeffs(taps);
    for (auto& c : coeffs) c = rng.next_word_in(-8, 8);

    const auto spatial = kernels::run_spatial_fir(ring16, x, coeffs);
    const auto paged = kernels::run_paged_serial_fir(ring16, x, coeffs);
    const auto wordwise = kernels::run_wordwise_serial_fir(ring16, x,
                                                           coeffs);
    const auto golden = dsp::fir_reference(x, coeffs);
    const bool ok = spatial.outputs == golden && paged.outputs == golden &&
                    wordwise.outputs == golden;
    std::printf("  %5zu %15.2f c/spl %15.2f c/spl %15.2f c/spl  %s\n",
                taps, spatial.cycles_per_sample, paged.cycles_per_sample,
                wordwise.cycles_per_sample, ok ? "" : "MISMATCH");
    if (!ok) return 1;
    obs::JsonValue row = obs::JsonValue::object();
    row.set("taps", std::uint64_t{taps});
    row.set("spatial_cycles_per_sample", spatial.cycles_per_sample);
    row.set("paged_cycles_per_sample", paged.cycles_per_sample);
    row.set("wordwise_cycles_per_sample", wordwise.cycles_per_sample);
    row.set("route_changes_paged", paged.stats.switch_route_changes);
    row.set("route_changes_wordwise", wordwise.stats.switch_route_changes);
    rows.push_back(std::move(row));
  }

  std::printf("\n  multiplier usage: spatial = taps multipliers, both "
              "serial variants = 1 multiplier (resource sharing).\n");

  // Local mode vs controller overhead on a MAC stream.
  std::vector<Word> a(1024, 3), b(1024, 5);
  const auto local = kernels::run_running_mac(ring16, a, b);
  std::printf("\nStand-alone (local) mode, 1024-pair MAC stream:\n");
  std::printf("  cycles: %llu, controller instructions: %llu "
              "(boot only), %.3f MACs/cycle\n",
              static_cast<unsigned long long>(local.stats.cycles),
              static_cast<unsigned long long>(
                  local.stats.ctrl_instructions),
              static_cast<double>(a.size()) /
                  static_cast<double>(local.stats.cycles));
  std::printf("  -> the controller is free for prefetch/management, the "
              "paper's \"without RISC controller overheading\".\n");

  RunReport report = RunReport::from_stats("ablation.localmode",
                                           local.stats);
  report.extra("fir_sweep", std::move(rows))
      .extra("mac_pairs", std::uint64_t{a.size()})
      .extra("macs_per_cycle",
             static_cast<double>(a.size()) /
                 static_cast<double>(local.stats.cycles));
  maybe_write_run_report(report, json_path);
  return 0;
}
