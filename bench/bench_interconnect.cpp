// §4.2 reproduction — why a ring: first-order scalability of the four
// operating-layer topologies the paper discusses (mesh, crossbar,
// array, ring).  The reproduced claim is the shape: every alternative
// grows its longest wire (and hence loses frequency) or its
// interconnect area super-linearly, while the ring stays flat/linear.
#include <cstdio>

#include "model/interconnect.hpp"

int main() {
  using namespace sring::model;
  const Topology topologies[] = {Topology::kRing, Topology::kMesh,
                                 Topology::kArray, Topology::kCrossbar};

  std::printf("Interconnect scalability (normalized first-order models, "
              "paper §4.2)\n\n");
  std::printf("  longest combinational wire (Dnode pitches):\n");
  std::printf("  %9s", "dnodes");
  for (const auto t : topologies) {
    std::printf(" %10s", to_string(t).c_str());
  }
  std::printf("\n");
  for (const std::size_t n : {8u, 16u, 64u, 256u, 1024u}) {
    std::printf("  %9zu", n);
    for (const auto t : topologies) {
      std::printf(" %10.1f", longest_wire_pitches(t, n));
    }
    std::printf("\n");
  }

  std::printf("\n  relative frequency (1.0 = datapath-limited):\n");
  for (const std::size_t n : {8u, 64u, 1024u}) {
    std::printf("  %9zu", n);
    for (const auto t : topologies) {
      std::printf(" %10.2f", relative_frequency(t, n));
    }
    std::printf("\n");
  }

  std::printf("\n  interconnect area (Dnode-equivalents):\n");
  for (const std::size_t n : {8u, 64u, 1024u}) {
    std::printf("  %9zu", n);
    for (const auto t : topologies) {
      std::printf(" %10.0f", interconnect_area_dnodes(t, n));
    }
    std::printf("\n");
  }

  std::printf("\n  shape: only the ring keeps wires at one pitch (flat "
              "frequency) with linear area —\n  the paper's \"the routing "
              "problem is thus removed\".\n");
  return 0;
}
