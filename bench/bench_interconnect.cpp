// §4.2 reproduction — why a ring: first-order scalability of the four
// operating-layer topologies the paper discusses (mesh, crossbar,
// array, ring).  The reproduced claim is the shape: every alternative
// grows its longest wire (and hence loses frequency) or its
// interconnect area super-linearly, while the ring stays flat/linear.
#include <cstdio>

#include "model/interconnect.hpp"
#include "obs/cli.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace sring::model;
  const std::string json_path =
      sring::obs::extract_option(argc, argv, "--json").value_or("");
  const Topology topologies[] = {Topology::kRing, Topology::kMesh,
                                 Topology::kArray, Topology::kCrossbar};

  std::printf("Interconnect scalability (normalized first-order models, "
              "paper §4.2)\n\n");
  std::printf("  longest combinational wire (Dnode pitches):\n");
  std::printf("  %9s", "dnodes");
  for (const auto t : topologies) {
    std::printf(" %10s", to_string(t).c_str());
  }
  std::printf("\n");
  for (const std::size_t n : {8u, 16u, 64u, 256u, 1024u}) {
    std::printf("  %9zu", n);
    for (const auto t : topologies) {
      std::printf(" %10.1f", longest_wire_pitches(t, n));
    }
    std::printf("\n");
  }

  std::printf("\n  relative frequency (1.0 = datapath-limited):\n");
  for (const std::size_t n : {8u, 64u, 1024u}) {
    std::printf("  %9zu", n);
    for (const auto t : topologies) {
      std::printf(" %10.2f", relative_frequency(t, n));
    }
    std::printf("\n");
  }

  std::printf("\n  interconnect area (Dnode-equivalents):\n");
  for (const std::size_t n : {8u, 64u, 1024u}) {
    std::printf("  %9zu", n);
    for (const auto t : topologies) {
      std::printf(" %10.0f", interconnect_area_dnodes(t, n));
    }
    std::printf("\n");
  }

  std::printf("\n  shape: only the ring keeps wires at one pitch (flat "
              "frequency) with linear area —\n  the paper's \"the routing "
              "problem is thus removed\".\n");

  sring::RunReport report;
  report.name = "interconnect";
  sring::obs::JsonValue rows = sring::obs::JsonValue::array();
  for (const std::size_t n : {8u, 16u, 64u, 256u, 1024u}) {
    for (const auto t : topologies) {
      sring::obs::JsonValue row = sring::obs::JsonValue::object();
      row.set("dnodes", std::uint64_t{n});
      row.set("topology", to_string(t));
      row.set("longest_wire_pitches", longest_wire_pitches(t, n));
      row.set("relative_frequency", relative_frequency(t, n));
      row.set("interconnect_area_dnodes", interconnect_area_dnodes(t, n));
      rows.push_back(std::move(row));
    }
  }
  report.extra("sweep", std::move(rows));
  sring::maybe_write_run_report(report, json_path);
  return 0;
}
