// §1/§3 reproduction — the co-design motivation: when does confiding a
// kernel to the Systolic Ring beat computing it on the host CPU?
//
// Scenario: a 3-tap FIR stream.  Host = Pentium-II-class scalar model
// at 450 MHz; ring = Ring-8 at 200 MHz behind the paper's 250 MB/s PCI
// link.  The analytic model's offload time is cross-checked against
// the actual PCI-limited simulation.
#include <cstdio>
#include <vector>

#include "baseline/scalar_cpu.hpp"
#include "common/rng.hpp"
#include "kernels/fir_kernel.hpp"
#include "model/offload.hpp"
#include "obs/cli.hpp"

int main(int argc, char** argv) {
  using namespace sring;
  const std::string json_path =
      obs::extract_option(argc, argv, "--json").value_or("");

  // Calibrate the two compute rates from their own models.
  Rng rng(5);
  std::vector<Word> probe(2048);
  for (auto& v : probe) v = rng.next_word_in(-100, 100);
  const std::vector<Word> coeffs = {3, to_word(-2), 5};
  const auto host_run = baseline::scalar_fir(probe, coeffs);
  const double host_cps =
      host_run.stats.cycles / static_cast<double>(probe.size());

  const RingGeometry ring8{4, 2, 16};
  const auto ring_run = kernels::run_spatial_fir(ring8, probe, coeffs);
  const double ring_cps = ring_run.cycles_per_sample;

  model::OffloadScenario s;
  s.host_cycles_per_sample = host_cps;
  s.ring_cycles_per_sample = ring_cps;

  std::printf("Offload analysis: 3-tap FIR, Pentium II 450 vs Ring-8 "
              "@200 MHz over 250 MB/s PCI\n\n");
  std::printf("  host: %.1f cycles/sample; ring: %.2f cycles/sample; "
              "link: 4 bytes/sample\n\n", host_cps, ring_cps);
  std::printf("  %10s %12s %12s %10s %8s\n", "samples", "host/us",
              "offload/us", "bound", "speedup");
  for (const std::size_t n :
       {64u, 256u, 1024u, 16384u, 262144u, 1048576u}) {
    s.samples = n;
    const auto a = model::analyze_offload(s);
    std::printf("  %10zu %12.1f %12.1f %10s %7.2fx\n", n,
                1e6 * a.host_only_s, 1e6 * a.offload_total_s,
                a.transfer_s > a.ring_compute_s ? "link" : "compute",
                a.speedup);
  }
  const std::size_t be = model::break_even_samples(s);
  std::printf("\n  break-even stream length: %zu samples\n", be);

  // Cross-check the model against the PCI-limited simulation (the
  // simulated link is full-duplex, so the gating flow is the 2-byte
  // input stream).
  const LinkRate pci = LinkRate::from_bytes_per_second(250e6, 200e6);
  const auto pci_run = kernels::run_spatial_fir(ring8, probe, coeffs, pci);
  s.samples = probe.size();
  s.bytes_per_sample = 2;
  const auto a = model::analyze_offload(s);
  const double sim_s = pci_run.stats.cycles / 200e6;
  std::printf("\n  model vs simulation (%zu samples over PCI): %.1f us "
              "vs %.1f us measured (%.0f%% agreement)\n", probe.size(),
              1e6 * a.offload_total_s, 1e6 * sim_s,
              100.0 * std::min(a.offload_total_s, sim_s) /
                  std::max(a.offload_total_s, sim_s));
  std::printf("  -> the paper's SoC claim: a cheap 200 MHz ring next to "
              "the CPU outruns the big core\n     once streams amortize "
              "the transfer, and the PCI link (not compute) is the "
              "bound.\n");

  RunReport report = pci_run.report;
  report.name = "offload";
  report.extra("host_cycles_per_sample", host_cps)
      .extra("ring_cycles_per_sample", ring_cps)
      .extra("break_even_samples", std::uint64_t{be})
      .extra("model_offload_us", 1e6 * a.offload_total_s)
      .extra("sim_offload_us", 1e6 * sim_s);
  maybe_write_run_report(report, json_path);
  return 0;
}
