// Table 2 reproduction — 2-D wavelet transform implementations.
//
// Paper: lifting-scheme 2-D direct transform of a 1024x768 16-bit
// image, one pixel sample per clock cycle, 25% of the Ring left free.
// Table rows: [10] 0.7um 48.4mm2 50MHz (768+30)x16 memory; [11] 0.25um
// 2.2mm2 150MHz 897 bytes; Ring-16 1.4mm2 (0.25um model) 200MHz.
//
// We measure the throughput on the cycle-accurate Ring-16 (a smaller
// default frame keeps the bench quick; pass a flag for the full
// 1024x768) and take the area/frequency columns from the fitted
// technology model.  The "memory" column for the ring is the feedback
// pipeline storage actually used by the kernel.
#include <cstdio>
#include <cstring>

#include "common/image.hpp"
#include "kernels/dwt_kernel.hpp"
#include "model/tech.hpp"
#include "obs/cli.hpp"
#include "sim/report.hpp"
#include "sim/system.hpp"

int main(int argc, char** argv) {
  using namespace sring;
  const std::string json_path =
      obs::extract_option(argc, argv, "--json").value_or("");
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const std::size_t width = full ? 1024 : 256;
  const std::size_t height = full ? 768 : 192;

  const RingGeometry ring16{8, 2, 16};
  const Image img = Image::synthetic(width, height, 555);
  const auto result = kernels::run_dwt53_2d(ring16, img);

  // Measure ring occupancy directly: run one line through a System we
  // keep hold of and count the Dnodes that issued instructions.
  std::size_t used_dnodes = 0;
  RunReport report;
  {
    System sys({ring16});
    sys.load(kernels::make_dwt53_program(ring16));
    std::vector<Word> row(64, 1);
    row.insert(row.end(), 18, 0);
    sys.host().send(row);
    sys.run_cycles(32);
    for (const auto ops : sys.ring().ops_per_dnode()) {
      used_dnodes += ops > 0 ? 1 : 0;
    }
    // Per-Dnode detail comes from the one-line probe System; frame
    // totals ride along as extras below.
    report = RunReport::from_system("table2.wavelet", sys);
  }
  const double free_pct =
      100.0 * static_cast<double>(16 - used_dnodes) / 16.0;
  // Feedback storage the kernel relies on: every switch latches its
  // upstream layer each cycle -> 8 pipelines x 2 lanes x 16 x 2 bytes.
  const std::size_t fb_bytes = 8 * 2 * 16 * 2;

  const auto t25 = model::tech_025um();

  std::printf("Table 2: 2-D 5/3 wavelet transform implementations "
              "(%zux%zu 16-bit image)\n\n", width, height);
  std::printf("  %-18s %-8s %-10s %-10s %-14s\n", "circuit", "techno",
              "area", "frequency", "memory");
  std::printf("  %-18s %-8s %-10s %-10s %-14s   (paper row)\n",
              "Navarro [10]", "0.7um", "48.4 mm2", "50 MHz",
              "(768+30)x16 b");
  std::printf("  %-18s %-8s %-10s %-10s %-14s   (paper row)\n",
              "Diou et al. [11]", "0.25um", "2.2 mm2", "150 MHz",
              "897 bytes");
  std::printf("  %-18s %-8s %-6.1f mm2 %-10s %4zu bytes      (this work, "
              "measured)\n",
              "Systolic Ring-16", t25.name.c_str(),
              model::core_area_mm2(t25, 16), "200 MHz", fb_bytes);

  std::printf("\n  measured: %.3f cycles/pixel (paper claims one pixel "
              "sample per clock cycle)\n", result.cycles_per_sample);
  std::printf("  ring occupancy: %zu/16 Dnodes -> %.0f%% free (paper: "
              "25%% remains free)\n", used_dnodes, free_pct);
  const bool reconstructible =
      dsp::dwt53_inverse_2d(result.bands, dsp::Boundary::kZero) == img;
  std::printf("  transform verified reconstructible: %s\n",
              reconstructible ? "yes" : "NO");

  report.extra("frame_width", std::uint64_t{width})
      .extra("frame_height", std::uint64_t{height})
      .extra("frame_total_cycles", result.total_cycles)
      .extra("cycles_per_pixel", result.cycles_per_sample)
      .extra("used_dnodes", std::uint64_t{used_dnodes})
      .extra("free_pct", free_pct)
      .extra("fb_bytes", std::uint64_t{fb_bytes})
      .extra("reconstructible", reconstructible);
  maybe_write_run_report(report, json_path);
  return 0;
}
